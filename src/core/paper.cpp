#include "core/paper.hpp"

#include "core/builder.hpp"

namespace optm::core::paper {

History fig1_h1() {
  return HistoryBuilder::registers(2)
      .write(1, kX, 1)
      .tryc(1)
      .commit(1)
      .read(2, kX, 1)
      .write(3, kX, 2)
      .write(3, kY, 2)
      .tryc(3)
      .commit(3)
      .read(2, kY, 2)
      .tryc(2)
      .abort(2)
      .build();
}

History h2() {
  return HistoryBuilder::registers(2)
      .write(1, kX, 1)
      .tryc(1)
      .commit(1)
      .write(3, kX, 2)
      .write(3, kY, 2)
      .tryc(3)
      .commit(3)
      .read(2, kX, 1)
      .read(2, kY, 2)
      .tryc(2)
      .abort(2)
      .build();
}

History h3() {
  return HistoryBuilder::registers(1)
      .write(1, kX, 1)
      .tryc(1)
      .read(2, kX, 1)
      .build();
}

History h4() {
  return HistoryBuilder::registers(2)
      .read(1, kX, 0)
      .write(2, kX, 5)
      .write(2, kY, 5)
      .tryc(2)
      .read(3, kY, 5)
      .read(1, kY, 0)
      .build();
}

History fig2_h5() {
  // Transcribed event-for-event from §5.3.
  HistoryBuilder b = HistoryBuilder::registers(2);
  b.write(2, kX, 1).write(2, kY, 2).tryc(2);
  b.inv(1, kX, OpCode::kRead);
  b.commit(2);
  b.inv(3, kY, OpCode::kWrite, 3);
  b.ret(1, 1);  // ret1(x, read, 1)
  b.inv(1, kX, OpCode::kWrite, 5);
  b.ret(3, kOk);  // ret3(y, write, ok)
  b.ret(1, kOk);  // ret1(x, write, ok)
  b.inv(1, kY, OpCode::kRead);
  b.inv(3, kX, OpCode::kRead);
  b.ret(1, 2);  // ret1(y, read, 2)
  b.tryc(1);
  b.ret(3, 1);  // ret3(x, read, 1)
  b.tryc(3);
  b.abort(1);   // A1
  b.commit(3);  // C3
  return b.build();
}

History section2_zombie() {
  ObjectModel model;
  model.add(std::make_shared<const RegisterSpec>(4));   // x = 4
  model.add(std::make_shared<const RegisterSpec>(16));  // y = 16 = x²
  return HistoryBuilder(std::move(model))
      .read(2, kX, 4)    // T2 sees the old x ...
      .write(1, kX, 2)
      .write(1, kY, 4)
      .tryc(1)
      .commit(1)
      .read(2, kY, 4)    // ... and the new y: y - x == 0, 1/(y-x) traps
      .trya(2)
      .abort(2)
      .build();
}

History counter_increments(std::size_t k) {
  ObjectModel model;
  model.add(std::make_shared<const CounterSpec>(0));
  HistoryBuilder b(std::move(model));
  // All transactions overlap: every inc is invoked before any commits.
  for (std::size_t i = 1; i <= k; ++i)
    b.inv(static_cast<TxId>(i), 0, OpCode::kInc);
  for (std::size_t i = 1; i <= k; ++i) b.ret(static_cast<TxId>(i), kOk);
  for (std::size_t i = 1; i <= k; ++i) b.commit_now(static_cast<TxId>(i));
  return b.build();
}

History register_increments_all_commit(std::size_t k) {
  HistoryBuilder b = HistoryBuilder::registers(1);
  for (std::size_t i = 1; i <= k; ++i) b.read(static_cast<TxId>(i), kX, 0);
  for (std::size_t i = 1; i <= k; ++i)
    b.write(static_cast<TxId>(i), kX, static_cast<Value>(i));
  for (std::size_t i = 1; i <= k; ++i) b.commit_now(static_cast<TxId>(i));
  return b.build();
}

History register_increments_one_commits(std::size_t k) {
  HistoryBuilder b = HistoryBuilder::registers(1);
  for (std::size_t i = 1; i <= k; ++i) b.read(static_cast<TxId>(i), kX, 0);
  for (std::size_t i = 1; i <= k; ++i)
    b.write(static_cast<TxId>(i), kX, static_cast<Value>(i));
  b.commit_now(1);
  for (std::size_t i = 2; i <= k; ++i) b.tryc(static_cast<TxId>(i)).abort(static_cast<TxId>(i));
  return b.build();
}

History blind_overlapping_writes(std::size_t k) {
  HistoryBuilder b = HistoryBuilder::registers(3);
  for (ObjId obj : {kX, kY, kZ}) {
    for (std::size_t i = 1; i <= k; ++i)
      b.write(static_cast<TxId>(i), obj, static_cast<Value>(i));
  }
  for (std::size_t i = 1; i <= k; ++i) b.commit_now(static_cast<TxId>(i));
  return b.build();
}

}  // namespace optm::core::paper
