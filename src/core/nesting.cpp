#include "core/nesting.hpp"

#include <stdexcept>

namespace optm::core {

namespace {

/// Transitive top-level ancestor, with cycle detection.
TxId top_level(TxId tx, const NestingForest& forest) {
  TxId current = tx;
  std::size_t hops = 0;
  for (auto it = forest.find(current); it != forest.end();
       it = forest.find(current)) {
    current = it->second;
    if (++hops > forest.size()) {
      throw std::invalid_argument("flatten_closed_nesting: cyclic parent map");
    }
  }
  return current;
}

}  // namespace

History flatten_closed_nesting(const History& h, const NestingForest& forest) {
  // Determine which nested transactions committed: only those merge.
  std::map<TxId, bool> merges;
  for (const auto& [child, parent] : forest) {
    (void)parent;
    merges[child] = h.is_committed(child);
  }

  History out(h.model());
  for (const Event& e : h.events()) {
    const auto it = merges.find(e.tx);
    if (it == merges.end() || !it->second) {
      out.append(e);  // top-level, or aborted/live child kept as-is
      continue;
    }
    // Committed child: operations become the ancestor's; its termination
    // events vanish (the paper: "as if they were executed directly by the
    // parent transaction").
    switch (e.kind) {
      case EventKind::kInvoke:
      case EventKind::kResponse: {
        Event relabeled = e;
        relabeled.tx = top_level(e.tx, forest);
        out.append(relabeled);
        break;
      }
      case EventKind::kTryCommit:
      case EventKind::kCommit:
        break;  // absorbed into the parent
      default:
        throw std::invalid_argument(
            "flatten_closed_nesting: committed child with abort events");
    }
  }

  std::string why;
  if (!out.well_formed(&why)) {
    // E.g. a child ran outside its parent's lifetime.
    throw std::invalid_argument("flatten_closed_nesting: result malformed: " +
                                why);
  }
  return out;
}

History flatten_open_nesting(const History& h, const NestingForest& forest) {
  // Ancestry test (with the same cycle guard as the closed reduction).
  const auto is_ancestor = [&forest](TxId anc, TxId tx) {
    TxId current = tx;
    std::size_t hops = 0;
    for (auto it = forest.find(current); it != forest.end();
         it = forest.find(current)) {
      current = it->second;
      if (current == anc) return true;
      if (++hops > forest.size()) {
        throw std::invalid_argument("flatten_open_nesting: cyclic parent map");
      }
    }
    return false;
  };
  for (const auto& [child, parent] : forest) {
    (void)top_level(child, forest);  // cycle detection even for anc==self
    if (child == parent) {
      throw std::invalid_argument("flatten_open_nesting: self-parent");
    }
  }

  // Resolve, per (object, value), the writing transaction (value-unique
  // writes, as in §5.4) and the position of the write invocation.
  std::map<std::pair<ObjId, Value>, std::pair<TxId, std::size_t>> writer_of;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke && e.op == OpCode::kWrite) {
      const auto [it, inserted] =
          writer_of.emplace(std::make_pair(e.obj, e.arg), std::make_pair(e.tx, i));
      if (!inserted && it->second.first != e.tx) {
        throw std::invalid_argument(
            "flatten_open_nesting: writes must be value-unique");
      }
    }
  }

  // First event position per transaction; commit position per transaction.
  std::map<TxId, std::size_t> first_pos;
  std::map<TxId, std::size_t> commit_pos;
  for (std::size_t i = 0; i < h.size(); ++i) {
    first_pos.emplace(h[i].tx, i);
    if (h[i].kind == EventKind::kCommit) commit_pos[h[i].tx] = i;
  }

  // Mark the event positions to drop: a child read whose value was written
  // by a (transitive) ancestor before the child's first event AND was not
  // yet committed at the read (a committed ancestor's value is judged
  // globally — dropping it would hide genuine staleness). The matching
  // invocation is the reader's preceding event.
  std::vector<bool> drop(h.size(), false);
  std::map<TxId, std::size_t> last_event_of;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kResponse && e.op == OpCode::kRead &&
        forest.count(e.tx) != 0) {
      const auto w = writer_of.find({e.obj, e.ret});
      if (w != writer_of.end()) {
        const auto [writer, wpos] = w->second;
        const auto c = commit_pos.find(writer);
        const bool committed_before = c != commit_pos.end() && c->second < i;
        if (is_ancestor(writer, e.tx) && wpos < first_pos.at(e.tx) &&
            !committed_before) {
          drop[i] = true;
          drop[last_event_of.at(e.tx)] = true;  // the matching invocation
        }
      }
    }
    last_event_of[e.tx] = i;
  }

  History out(h.model());
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (!drop[i]) out.append(h[i]);
  }

  std::string why;
  if (!out.well_formed(&why)) {
    throw std::invalid_argument("flatten_open_nesting: result malformed: " + why);
  }
  return out;
}

History with_non_transactional_access(const History& h, TxId tx, ObjId obj,
                                      OpCode op, Value arg, Value ret) {
  if (h.contains(tx)) {
    throw std::invalid_argument(
        "with_non_transactional_access: transaction id already used");
  }
  History out = h;
  out.append(ev::inv(tx, obj, op, arg));
  out.append(ev::ret(tx, obj, op, arg, ret));
  out.append(ev::try_commit(tx));
  out.append(ev::commit(tx));
  return out;
}

}  // namespace optm::core
