#include "core/rigorous.hpp"

#include <limits>
#include <map>

#include "core/recoverability.hpp"

namespace optm::core {

RigorousResult check_rigorous(const History& h) {
  RigorousResult result{true, ""};

  // Condition 1: strict recoverability.
  const RecoverabilityResult strict = check_strict_recoverability(h);
  if (!strict.holds) {
    result.holds = false;
    result.reason = strict.reason;
    return result;
  }

  // Condition 2: no update on an object read by an incomplete transaction.
  const auto& model = h.model();
  std::map<TxId, std::size_t> completion;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kCommit || e.kind == EventKind::kAbort)
      completion[e.tx] = i;
  }
  const std::size_t never = std::numeric_limits<std::size_t>::max();

  // Only operation executions count (see recoverability.hpp): a refused
  // request — an invocation answered by A — never touched the object.
  const std::vector<bool> executed = executed_invocations(h);
  std::map<std::pair<TxId, ObjId>, std::size_t> first_read;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const Event& e = h[i];
    if (e.kind == EventKind::kInvoke && executed[i] &&
        model.spec(e.obj).is_readonly(e.op)) {
      first_read.emplace(std::make_pair(e.tx, e.obj), i);
    }
  }

  for (const auto& [key, start] : first_read) {
    const auto [reader, obj] = key;
    const auto done = completion.count(reader) ? completion.at(reader) : never;
    for (std::size_t i = start + 1; i < h.size() && i < done; ++i) {
      const Event& e = h[i];
      if (e.kind == EventKind::kInvoke && executed[i] && e.obj == obj &&
          e.tx != reader && !model.spec(e.obj).is_readonly(e.op)) {
        result.holds = false;
        result.reason =
            "T" + std::to_string(e.tx) + " updated x" + std::to_string(obj) +
            " read by incomplete T" + std::to_string(reader);
        return result;
      }
    }
  }
  return result;
}

}  // namespace optm::core
