#include "core/parallel_stream.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/dense_state.hpp"
#include "core/object_spec.hpp"
#include "core/parallel_verify.hpp"
#include "core/window_merge.hpp"
#include "util/pool.hpp"

namespace optm::core {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::size_t kOpenRank = static_cast<std::size_t>(-1);

using detail::tx_tag;
using Flag = detail::MergeFlag;
using ReadRec = detail::MergeReadRec;
using TxMeta = detail::MergeTxState;

/// Bounded blocking queue. Single producer in both uses (the ingest thread
/// feeds the chunk channel, the pass-0 worker feeds each shard channel),
/// single consumer; the mutex keeps it correct even if a caller bends
/// that. push blocks while full, pop blocks while empty; close() wakes
/// everyone — pop then drains the backlog and returns false.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  /// False iff the channel was closed (the item is dropped then).
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    can_push_.wait(lock, [&] { return closed_ || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    lock.unlock();
    can_pop_.notify_one();
    return true;
  }

  /// False iff closed and drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    can_pop_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    can_push_.notify_one();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    can_push_.notify_all();
    can_pop_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Free list for the pipeline's buffer vectors (event chunks, shard item
/// batches): consumers hand buffers back instead of freeing them, so a
/// warmed-up stream stops allocating.
template <typename T>
class Recycler {
 public:
  [[nodiscard]] T take() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return T{};
    T out = std::move(free_.back());
    free_.pop_back();
    return out;
  }

  void give(T&& t) {
    t.clear();
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(t));
  }

 private:
  std::mutex mu_;
  std::vector<T> free_;
};

/// One event routed to a shard. kResponse items carry only (e, pos);
/// kCommit items are broadcast to every shard on the genuine committed
/// transition, with `install` set when the committer has writes and `rank`
/// its pass-0 serialization rank.
struct ShardItem {
  Event e{};
  std::size_t pos{0};
  std::size_t rank{0};
  bool install{false};
};

struct ShardBatch {
  std::vector<ShardItem> items;
  bool barrier{false};
  bool final{false};
  /// Transactions that COMPLETED (committed or aborted) in the window this
  /// barrier closes; shared read-only across all shards.
  std::shared_ptr<const std::vector<TxId>> completed;
};

}  // namespace

struct ParallelStreamCertifier::Impl {
  struct Chunk {
    std::vector<Event> events;
    std::size_t base{0};
  };

  struct PendingRead {
    TxId tx;
    std::size_t pos;
    ObjId obj;
    std::pair<ObjId, Value> key;
    std::uint64_t stamp;  // 2·rv+1 when the read is stamped, else 0
    std::uint64_t ver;    // version half of the read-stamp pair
  };

  /// The shard worker's state: ShardPass's containers (parallel_verify.cpp)
  /// run incrementally. All fields except `queue` are touched only by the
  /// shard's worker task — and by the pass-0 worker during a merge, while
  /// the shard is parked at the barrier (the barrier mutex orders the
  /// handoff).
  struct Shard {
    std::size_t shard;
    std::size_t num_shards;
    VersionOrderPolicy policy;
    BoundedChannel<ShardBatch> queue;

    struct VersionRec {
      TxId writer{kNoTx};
      std::size_t open_rank{0};
      std::size_t close_rank{kOpenRank};
      std::size_t close_pos{kNone};
      bool installed{false};
    };
    VersionTable<VersionRec> versions;
    // Register -> key of its current committed version (dense by obj).
    std::vector<std::pair<ObjId, Value>> current;
    // Write sets, held compactly exactly as in ShardPass: dense index slab,
    // sets only for transactions that wrote in this shard.
    TxSlab<std::uint32_t> writer_index;
    std::vector<SmallWriteSet> writer_sets;
    SmallWriteSet::SpillPool spill_pool;
    // Marks fed by the broadcast C items / the barrier completed lists. A
    // bool committed mark suffices where ShardPass compares commit_pos < i:
    // items arrive in position order, so the mark is set iff the commit
    // preceded the current item.
    TxSlab<std::uint8_t> committed;
    TxSlab<std::uint8_t> done;
    std::vector<PendingRead> pending;
    // Handoff slots, consumed by the pass-0 worker at each barrier.
    std::vector<Flag> flags;
    std::vector<ReadRec> reads;

    Shard(std::size_t s, std::size_t n, VersionOrderPolicy p,
          std::size_t expected_versions, std::size_t queue_cap)
        : shard(s),
          num_shards(n),
          policy(p),
          queue(queue_cap),
          versions(expected_versions) {}

    [[nodiscard]] SmallWriteSet* writes_of(TxId tx) {
      const std::uint32_t* idx = writer_index.find(tx);
      return idx != nullptr && *idx != 0 ? &writer_sets[*idx - 1] : nullptr;
    }

    void seed(const ObjectModel& model) {
      current.resize(model.size());
      for (ObjId r = 0; r < model.size(); ++r) {
        if (r % num_shards != shard) continue;
        const auto* reg = dynamic_cast<const RegisterSpec*>(&model.spec(r));
        const Value init_val = reg->initial_value();
        VersionRec init;
        init.writer = kInitTx;
        init.installed = true;
        versions.slot(r, init_val) = init;
        current[r] = {r, init_val};
      }
    }

    void flag(std::size_t pos, std::string reason, CertFlagKind kind, TxId tx,
              std::atomic<bool>& flagged) {
      flags.push_back({pos, std::move(reason), kind, tx, shard});
      flagged.store(true, std::memory_order_relaxed);
    }

    /// ShardPass's per-event scan, one item at a time. Items arrive in
    /// stream position order, which is all the scan ever relied on.
    void process(const ShardItem& it, std::atomic<bool>& flagged) {
      const Event& e = it.e;
      const std::size_t i = it.pos;
      if (e.kind == EventKind::kCommit) {
        committed.get(e.tx) = 1;
        if (!it.install) return;
        SmallWriteSet* writes = writes_of(e.tx);
        if (writes == nullptr || writes->empty()) return;
        const std::size_t rank = it.rank;
        for (const auto& [obj, value] : *writes) {
          auto& prev_key = current[obj];
          if (VersionRec* prev =
                  versions.find(prev_key.first, prev_key.second)) {
            prev->close_rank = rank;
            prev->close_pos = i;
          }
          VersionRec& rec = versions.slot(obj, value);
          rec.writer = e.tx;
          rec.open_rank = rank;
          rec.close_rank = kOpenRank;
          rec.close_pos = kNone;
          rec.installed = true;
          prev_key = {obj, value};
        }
        // As in ShardPass: the write set is intentionally NOT recycled — a
        // malformed history can read after its commit, and the equivalent
        // treatment of that read depends on the stale buffer.
        return;
      }

      if (e.op == OpCode::kWrite) {
        bool inserted = false;
        VersionRec& rec = versions.slot(e.obj, e.arg, &inserted);
        if (inserted) {
          rec.writer = e.tx;
        } else if (rec.writer != e.tx) {
          flag(i,
               tx_tag(e.tx) + " rewrote value " + std::to_string(e.arg) +
                   " of x" + std::to_string(e.obj) +
                   " (value-unique writes required)",
               CertFlagKind::kValueNotUnique, e.tx, flagged);
          rec.writer = e.tx;
        }
        std::uint32_t& windex = writer_index.get(e.tx);
        if (windex == 0) {
          writer_sets.emplace_back();
          windex = static_cast<std::uint32_t>(writer_sets.size());
        }
        writer_sets[windex - 1].set(e.obj, e.arg, spill_pool);
        return;
      }
      if (e.op != OpCode::kRead) return;

      // Local reads answer from the write buffer; they never touch windows.
      if (const SmallWriteSet* own_set = writes_of(e.tx)) {
        if (const Value* own = own_set->find(e.obj)) {
          if (*own != e.ret) {
            flag(i,
                 tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                     std::to_string(e.ret) + " despite its own write of " +
                     std::to_string(*own) + " (local consistency)",
                 CertFlagKind::kLocalInconsistency, e.tx, flagged);
          }
          return;
        }
      }

      const VersionRec* v = versions.find(e.obj, e.ret);
      if (v == nullptr) {
        flag(i,
             tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                 std::to_string(e.ret) + ", a value never written",
             CertFlagKind::kUnwrittenValue, e.tx, flagged);
        return;
      }
      if (v->writer == e.tx) {
        flag(i,
             tx_tag(e.tx) + " read back its own value without a prior write",
             CertFlagKind::kSelfRead, e.tx, flagged);
        return;
      }
      if (v->writer != kInitTx) {
        const std::uint8_t* c = committed.find(v->writer);
        if (c == nullptr || *c == 0) {
          flag(i,
               tx_tag(e.tx) + " read x" + std::to_string(e.obj) + "=" +
                   std::to_string(e.ret) + " from non-committed T" +
                   std::to_string(v->writer),
               CertFlagKind::kReadFromNonCommitted, e.tx, flagged);
          return;
        }
      }
      pending.push_back({e.tx, i, e.obj, {e.obj, e.ret},
                         policy == VersionOrderPolicy::kStampedRead ? e.stamp
                                                                    : 0,
                         e.ver});
    }

    /// At a barrier: resolve the pending reads of the transactions that
    /// completed in the closed window against the version chain — which is
    /// final as far as those transactions' checks go (see the header's
    /// soundness argument) — with ShardPass's exact resolution code. At
    /// the final barrier, resolve everything (reads of still-live
    /// transactions, against the genuinely final chain).
    void resolve_at_barrier(const std::vector<TxId>& completed_txs,
                            bool is_final, std::atomic<bool>& flagged) {
      for (const TxId id : completed_txs) done.get(id) = 1;
      std::size_t kept = 0;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const PendingRead pr = pending[k];
        if (!is_final) {
          const std::uint8_t* d = done.find(pr.tx);
          if (d == nullptr || *d == 0) {
            pending[kept++] = pr;
            continue;
          }
        }
        resolve(pr, flagged);
      }
      pending.resize(kept);
    }

    void resolve(const PendingRead& pr, std::atomic<bool>& flagged) {
      const VersionRec& rec = *versions.find(pr.key.first, pr.key.second);
      // kStampedRead: identical to ShardPass's resolution, including the
      // monitor's empty [0, 0) interval for never-installed versions.
      if (pr.stamp != 0) {
        const std::size_t open = rec.installed ? rec.open_rank : 0;
        if (pr.ver != kNoReadVersion &&
            !read_stamp_names_version(pr.ver, open)) {
          flag(pr.pos,
               tx_tag(pr.tx) + " stamped its read of x" +
                   std::to_string(pr.obj) + "=" +
                   std::to_string(pr.key.second) + " with version " +
                   std::to_string(pr.ver) +
                   " but the value belongs to the version opened at rank " +
                   std::to_string(open),
               CertFlagKind::kReadStampMismatch, pr.tx, flagged);
          return;
        }
        if (open > static_cast<std::size_t>(pr.stamp)) {
          flag(pr.pos,
               tx_tag(pr.tx) + " read x" + std::to_string(pr.obj) + "=" +
                   std::to_string(pr.key.second) +
                   " from a version opened at rank " + std::to_string(open) +
                   ", after its snapshot stamp " + std::to_string(pr.stamp),
               CertFlagKind::kReadStampMismatch, pr.tx, flagged);
          return;
        }
      }
      if (!rec.installed) {
        reads.push_back({pr.tx, pr.pos, pr.obj, shard, 0, 0, 0});
      } else {
        reads.push_back({pr.tx, pr.pos, pr.obj, shard, rec.open_rank,
                         rec.close_rank, rec.close_pos});
      }
    }
  };

  // --- configuration (immutable after the constructor) ---
  ObjectModel model;
  VersionOrderPolicy policy;
  Options opts;
  util::ThreadPool* pool{nullptr};
  std::unique_ptr<util::ThreadPool> owned_pool;
  std::size_t num_shards{1};

  // kBlindWriteSmart serial fallback (see the header for why).
  std::unique_ptr<OnlineCertificateMonitor> monitor;

  // --- ingest-thread state ---
  bool started{false};
  bool finished{false};
  std::size_t fed{0};
  std::size_t reserve_txs{0};
  std::size_t reserve_versions{0};
  std::optional<OnlineViolation> latched;

  std::atomic<bool> flagged{false};

  // --- pipeline ---
  std::unique_ptr<BoundedChannel<Chunk>> chunks;
  Recycler<std::vector<Event>> chunk_recycler;
  Recycler<std::vector<ShardItem>> item_recycler;
  std::vector<std::unique_ptr<Shard>> shards;

  // --- pass-0 worker state ---
  TxSlab<TxMeta> txs;
  VersionOrderResolver resolver;
  std::vector<Flag> flags;
  std::vector<TxId> completed_window;
  std::vector<std::vector<ShardItem>> stage;
  std::size_t since_barrier{0};
  // merge scratch
  std::vector<ReadRec> merge_reads;
  std::vector<detail::MergeClose> closes_scratch;
  std::unordered_set<TxId> with_reads;

  // --- barrier + shutdown ---
  struct BarrierSync {
    std::mutex mu;
    std::condition_variable arrived_cv;
    std::condition_variable resume_cv;
    std::size_t arrived{0};
    std::uint64_t generation{0};
  };
  BarrierSync sync;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t workers_done{0};
  std::size_t workers_total{0};

  Impl(ObjectModel m, VersionOrderPolicy p, Options o, util::ThreadPool* ext)
      : model(std::move(m)), policy(p), opts(o), resolver(p) {
    for (ObjId r = 0; r < model.size(); ++r) {
      if (dynamic_cast<const RegisterSpec*>(&model.spec(r)) == nullptr) {
        throw std::invalid_argument(
            "parallel stream certification: register histories only");
      }
    }
    if (opts.merge_window_events == 0) opts.merge_window_events = 1;
    if (opts.max_queued_chunks == 0) opts.max_queued_chunks = 1;
    if (policy == VersionOrderPolicy::kBlindWriteSmart) {
      monitor = std::make_unique<OnlineCertificateMonitor>(model, policy);
      return;
    }
    const std::size_t budget =
        ext != nullptr
            ? ext->size()
            : resolve_verify_concurrency(model.size(), 0, opts.num_threads)
                  .threads;
    num_shards = resolve_verify_concurrency(model.size(), opts.num_shards,
                                            budget > 1 ? budget - 1 : 1)
                     .shards;
    if (ext != nullptr) {
      if (ext->size() < num_shards + 1) {
        throw std::invalid_argument(
            "parallel stream certification: external pool needs at least "
            "num_shards + 1 threads (long-running workers)");
      }
      pool = ext;
    }
  }

  ~Impl() { finish(); }

  bool ingest(std::span<const Event> batch) {
    if (monitor) return monitor->ingest(batch);
    if (finished) return ok();
    if (!batch.empty()) {
      if (!started) start();
      Chunk c;
      c.events = chunk_recycler.take();
      c.events.assign(batch.begin(), batch.end());
      c.base = fed;
      fed += batch.size();
      chunks->push(std::move(c));
    }
    return !flagged.load(std::memory_order_relaxed);
  }

  void reserve(std::size_t num_txs, std::size_t num_versions) {
    if (monitor) {
      monitor->reserve(num_txs, num_versions);
      return;
    }
    if (started) return;
    reserve_txs = num_txs;
    reserve_versions = num_versions;
  }

  bool finish() {
    if (monitor) {
      finished = true;
      return monitor->ok();
    }
    if (finished) return ok();
    finished = true;
    if (!started) return true;
    chunks->close();
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return workers_done == workers_total; });
    }
    std::sort(flags.begin(), flags.end(),
              [](const Flag& a, const Flag& b) { return a.pos < b.pos; });
    if (!flags.empty()) {
      latched = OnlineViolation{flags.front().pos, flags.front().reason,
                                flags.front().kind};
    }
    return ok();
  }

  [[nodiscard]] bool ok() const {
    if (monitor) return monitor->ok();
    if (finished) return !latched.has_value();
    return !flagged.load(std::memory_order_relaxed);
  }

  void start() {
    started = true;
    if (pool == nullptr) {
      owned_pool = std::make_unique<util::ThreadPool>(num_shards + 1);
      pool = owned_pool.get();
    }
    chunks = std::make_unique<BoundedChannel<Chunk>>(opts.max_queued_chunks);
    stage.resize(num_shards);
    if (reserve_txs != 0) txs.reserve(reserve_txs);
    const std::size_t per_shard_versions =
        reserve_versions / num_shards + model.size() / num_shards + 16;
    shards.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards.push_back(std::make_unique<Shard>(
          s, num_shards, policy, per_shard_versions, opts.max_queued_chunks));
      shards.back()->seed(model);
      if (reserve_txs != 0) {
        shards.back()->writer_index.reserve(reserve_txs);
        shards.back()->committed.reserve(reserve_txs);
        shards.back()->done.reserve(reserve_txs);
      }
    }
    workers_total = num_shards + 1;
    for (std::size_t s = 0; s < num_shards; ++s) {
      pool->submit([this, s] { shard_loop(s); });
    }
    pool->submit([this] { pass0_loop(); });
  }

  void worker_exit() {
    // Notify UNDER the mutex: this is the last thing a worker does, and
    // finish()'s waiter may destroy this Impl (and done_cv with it) the
    // moment it sees workers_done == workers_total. Held lock means the
    // waiter cannot leave wait() until this thread has released it —
    // i.e. until notify_all() has fully returned.
    const std::lock_guard<std::mutex> lock(done_mu);
    ++workers_done;
    done_cv.notify_all();
  }

  // ------------------------------------------------------------------
  // pass-0 worker
  // ------------------------------------------------------------------

  void pass0_loop() {
    Chunk chunk;
    while (chunks->pop(chunk)) {
      process_chunk(chunk);
      chunk_recycler.give(std::move(chunk.events));
      if (since_barrier >= opts.merge_window_events) {
        run_barrier(false);
        since_barrier = 0;
      }
    }
    run_barrier(true);
    for (auto& s : shards) s->queue.close();
    worker_exit();
  }

  void process_chunk(const Chunk& chunk) {
    for (std::size_t k = 0; k < chunk.events.size(); ++k) {
      const Event& e = chunk.events[k];
      const std::size_t i = chunk.base + k;
      TxMeta& tx = txs.get(e.tx);
      const std::size_t flags_before = flags.size();
      const bool completed_now =
          detail::pass0_step(tx, e, i, model, policy, resolver, flags);
      if (flags.size() != flags_before) {
        flagged.store(true, std::memory_order_relaxed);
      }
      if (completed_now) {
        completed_window.push_back(e.tx);
        if (e.kind == EventKind::kCommit) {
          // Broadcast every genuine committed transition: shards install
          // only their own registers' writes, but each needs the
          // committed-writer mark — a read may resolve to a version whose
          // writer committed with writes entirely in other shards' sets
          // (it wrote this shard's register too; the mark, not the write
          // set, is what the reads-from check consults).
          for (std::size_t s = 0; s < num_shards; ++s) {
            stage[s].push_back(
                {e, i, tx.has_write ? tx.commit_rank : 0, tx.has_write});
          }
        }
      }
      if (e.kind == EventKind::kResponse && model.contains(e.obj)) {
        stage[e.obj % num_shards].push_back({e, i, 0, false});
      }
    }
    since_barrier += chunk.events.size();
    flush_stage();
  }

  void flush_stage() {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (stage[s].empty()) continue;
      ShardBatch b;
      b.items = std::move(stage[s]);
      stage[s] = item_recycler.take();
      shards[s]->queue.push(std::move(b));
    }
  }

  void run_barrier(bool is_final) {
    flush_stage();
    auto completed =
        std::make_shared<std::vector<TxId>>(std::move(completed_window));
    completed_window = std::vector<TxId>{};
    for (auto& s : shards) {
      ShardBatch b;
      b.barrier = true;
      b.final = is_final;
      b.completed = completed;
      s->queue.push(std::move(b));
    }
    {
      std::unique_lock<std::mutex> lock(sync.mu);
      sync.arrived_cv.wait(lock, [&] { return sync.arrived == num_shards; });
    }
    // All shards are parked on resume_cv; their handoff slots are ours
    // (the barrier mutex ordered their writes before our reads).
    merge_window(*completed);
    {
      const std::lock_guard<std::mutex> lock(sync.mu);
      sync.arrived = 0;
      ++sync.generation;
    }
    sync.resume_cv.notify_all();
  }

  /// The sequential merge, identical in structure to the offline driver's
  /// merge_windows + check_readless_points, restricted to the
  /// transactions whose windows this barrier closed (their reads all
  /// resolved here — see the header).
  void merge_window(const std::vector<TxId>& completed) {
    merge_reads.clear();
    for (auto& s : shards) {
      flags.insert(flags.end(), s->flags.begin(), s->flags.end());
      s->flags.clear();
      merge_reads.insert(merge_reads.end(), s->reads.begin(), s->reads.end());
      s->reads.clear();
    }
    std::sort(merge_reads.begin(), merge_reads.end(),
              [](const ReadRec& a, const ReadRec& b) {
                if (a.tx != b.tx) return a.tx < b.tx;
                return a.pos < b.pos;
              });
    with_reads.clear();
    std::size_t begin = 0;
    while (begin < merge_reads.size()) {
      std::size_t end = begin;
      while (end < merge_reads.size() &&
             merge_reads[end].tx == merge_reads[begin].tx) {
        ++end;
      }
      const TxId id = merge_reads[begin].tx;
      with_reads.insert(id);
      detail::sweep_tx_windows(id, detail::to_merge_meta(*txs.find(id)),
                               merge_reads.data() + begin, end - begin,
                               stamp_space(policy), closes_scratch, flags);
      begin = end;
    }
    if (stamp_space(policy)) {
      for (const TxId id : completed) {
        if (with_reads.count(id) != 0) continue;
        const TxMeta* meta = txs.find(id);
        if (meta != nullptr) {
          detail::check_readless_tx(id, detail::to_merge_meta(*meta), flags);
        }
      }
    }
    if (!flags.empty()) flagged.store(true, std::memory_order_relaxed);
  }

  // ------------------------------------------------------------------
  // shard workers
  // ------------------------------------------------------------------

  void shard_loop(std::size_t s) {
    Shard& sh = *shards[s];
    ShardBatch b;
    while (sh.queue.pop(b)) {
      if (!b.items.empty()) {
        for (const ShardItem& it : b.items) sh.process(it, flagged);
        item_recycler.give(std::move(b.items));
      }
      if (b.barrier) {
        sh.resolve_at_barrier(*b.completed, b.final, flagged);
        b.completed.reset();
        std::unique_lock<std::mutex> lock(sync.mu);
        const std::uint64_t gen = sync.generation;
        ++sync.arrived;
        if (sync.arrived == num_shards) sync.arrived_cv.notify_one();
        sync.resume_cv.wait(lock, [&] { return sync.generation != gen; });
      }
    }
    worker_exit();
  }
};

ParallelStreamCertifier::ParallelStreamCertifier(ObjectModel model,
                                                 VersionOrderPolicy policy)
    : ParallelStreamCertifier(std::move(model), policy, Options{}) {}

ParallelStreamCertifier::ParallelStreamCertifier(ObjectModel model,
                                                 VersionOrderPolicy policy,
                                                 Options options,
                                                 util::ThreadPool* pool)
    : impl_(std::make_unique<Impl>(std::move(model), policy, options, pool)) {}

ParallelStreamCertifier::~ParallelStreamCertifier() = default;

bool ParallelStreamCertifier::ingest(std::span<const Event> batch) {
  return impl_->ingest(batch);
}

void ParallelStreamCertifier::reserve(std::size_t num_txs,
                                      std::size_t num_versions,
                                      std::size_t /*holders_per_register*/) {
  impl_->reserve(num_txs, num_versions);
}

bool ParallelStreamCertifier::finish() { return impl_->finish(); }

bool ParallelStreamCertifier::ok() const noexcept { return impl_->ok(); }

const std::optional<OnlineViolation>& ParallelStreamCertifier::violation()
    const noexcept {
  return impl_->monitor ? impl_->monitor->violation() : impl_->latched;
}

VersionOrderPolicy ParallelStreamCertifier::policy() const noexcept {
  return impl_->policy;
}

std::size_t ParallelStreamCertifier::events_fed() const noexcept {
  return impl_->monitor ? impl_->monitor->events_fed() : impl_->fed;
}

std::size_t ParallelStreamCertifier::shards_used() const noexcept {
  return impl_->monitor ? 1 : impl_->num_shards;
}

std::size_t ParallelStreamCertifier::threads_used() const noexcept {
  return impl_->monitor ? 1 : impl_->num_shards + 1;
}

bool ParallelStreamCertifier::serial_fallback() const noexcept {
  return impl_->monitor != nullptr;
}

}  // namespace optm::core
