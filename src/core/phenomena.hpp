// Phenomenon detectors (paper §1-§2): dirty reads and inconsistent
// snapshots ("read skew generalized to all transactions").
//
// These are the direct, constructive counterparts of the opacity checker:
// where check_opacity searches for a witness serialization, the detectors
// point at the concrete read that observed a state no sequence of committed
// transactions could have produced. The zombie demo and the WeakStm tests
// use them to exhibit §2's motivating failures.
//
// Register histories with value-unique writes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"

namespace optm::core {

struct DirtyRead {
  TxId reader{kNoTx};
  TxId writer{kNoTx};
  ObjId obj{kNoObj};
  Value value{0};
  std::size_t read_pos{0};  // position of the read's response in H
  /// True if the writer had issued tryC by the read (a "speculative" read
  /// from a commit-pending transaction — permitted by opacity, cf. H4).
  bool writer_commit_pending{false};
};

/// First read (if any) that returned a value whose writer had not committed
/// by the time of the read's response. Reads from commit-pending writers
/// are reported with writer_commit_pending = true; truly dirty reads (from
/// live or aborted writers) with false.
[[nodiscard]] std::optional<DirtyRead> find_dirty_read(const History& h);

struct InconsistentSnapshot {
  TxId tx{kNoTx};
  std::string explanation;
  /// The two reads that cannot coexist in any committed-prefix state.
  ObjId obj_a{kNoObj};
  Value value_a{0};
  ObjId obj_b{kNoObj};
  Value value_b{0};
};

/// Detects a transaction (of any status) whose non-local reads do not form
/// a consistent snapshot: there is no point in H at which all the observed
/// versions were simultaneously the latest committed versions. This is the
/// §2 hazard (the "x = 4, y = 4" zombie) in detector form. Reads from
/// never-committed writers are inconsistent by definition.
[[nodiscard]] std::optional<InconsistentSnapshot> find_inconsistent_snapshot(
    const History& h);

struct WriteSkew {
  TxId tx_a{kNoTx};
  TxId tx_b{kNoTx};
  ObjId read_by_a_written_by_b{kNoObj};
  ObjId read_by_b_written_by_a{kNoObj};
  std::string explanation;
};

/// Detects the write-skew anomaly among COMMITTED transactions: a pair of
/// concurrent committed Ta, Tb with disjoint write sets where Ta read (the
/// pre-state of) an object Tb wrote and vice versa, and neither saw the
/// other's update. This is the serializability violation snapshot isolation
/// admits — the failure mode of TMs that keep consistent live snapshots
/// (no §2 zombies) but give up opacity on the committed side. Register
/// histories with value-unique writes.
[[nodiscard]] std::optional<WriteSkew> find_write_skew(const History& h);

}  // namespace optm::core
