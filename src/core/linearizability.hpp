// Transaction-level linearizability (paper §3.1).
//
// Interpreting each committed transaction as a single atomic operation on
// the composed shared-object system, linearizability requires it to appear
// to take effect at one point within its lifespan; aborted transactions are
// treated as not having executed (the extension mentioned via [31]).
//
// Under this interpretation the condition coincides with strict
// serializability of the committed transactions, which is why the paper
// dismisses linearizability as insufficient: like serializability it is
// silent about the state observed by live and aborted transactions, whose
// intermediate results a TM exposes to the application (§3.1's point that a
// transaction is "not a black box").
#pragma once

#include "core/serializability.hpp"

namespace optm::core {

[[nodiscard]] inline SerializabilityResult check_transactional_linearizability(
    const History& h, std::uint64_t max_states = 4'000'000) {
  return check_strict_serializability(h, max_states);
}

}  // namespace optm::core
