// Sharded parallel offline verification of recorded histories.
//
// The streaming certificate monitor (online.hpp) is inherently sequential:
// one pass, one resolver, one window per live transaction. For RECORDED
// histories none of that needs to be sequential — the driver here splits
// the §5.4 certificate into three phases:
//
//   pass 0 (sequential, O(n), cheap):  the register-free part — the §4
//     well-formedness state machine per transaction, birth floors, and the
//     serialization-rank assignment, delegated to a
//     core::VersionOrderResolver (version_order.hpp). Under kCommitOrder
//     that is one rank per committed update transaction in C-event order;
//     under kSnapshotRank ranks are the stamps the runtime recorded
//     (2·wv on update commits, 2·snapshot+1 on snapshot-serialized
//     commits), so MV histories whose C records drift out of stamp order
//     — or whose read-only transactions serialize far before their C
//     event — rank correctly. Ranks are what couples registers together;
//     precomputing them is what keeps the shards independent, whatever
//     the policy.
//
//   pass 1 (parallel, one task per register shard):  each shard scans the
//     event array and processes only the operations on its registers —
//     value-unique writes, local consistency, reads-from resolution
//     against the shard's committed version chain (open/close ranks come
//     from pass 0's resolver, so they are exactly the streaming monitor's
//     ranks), and the per-read version intervals. Structurally identical
//     under every policy.
//
//   merge (sequential, O(reads log reads)):  per transaction, replay the
//     snapshot-window intersection over its reads from ALL shards in
//     position order, applying version closes only once their closing
//     C event precedes the current position — byte-for-byte the knowledge
//     the streaming monitor had at that moment. Emptiness, staleness and
//     serialization-point checks fire at the same event positions as the
//     monitor's; under kSnapshotRank the commit check is "rank inside the
//     window", the generalized form of "reads current at commit".
//
// Under kBlindWriteSmart the driver runs commit-order ranks and, when every
// flag is window-based (reorder_repairable), hands the history to the
// bounded §3.6 reordering search; a certified reorder clears the flags
// (result.smart_order carries the witness order).
//
// Under kCommitOrder, kSnapshotRank and kStampedRead the driver's verdict
// (clean / first flagged position) is equivalent to
// OnlineCertificateMonitor with the same policy fed the same history
// event-by-event; the equivalence is fuzz-tested (kStampedRead adds the
// per-read (rv, version) stamp cross-checks of window-free recordings —
// the shard pass validates each stamped read against its shard's version
// chain, pass 0 checks commit-stamp/read-snapshot monotonicity). kBlindWriteSmart is sound on both sides (a certified
// verdict always rests on an exactly verified order) but the two engines
// search different prefixes — the monitor repairs at the first repairable
// flag and re-verifies each later prefix, the driver repairs once over the
// whole history and only when every flag is repairable — so flagged
// positions may differ between them. Like the monitor, it is
// a SUFFICIENT certificate: a flag is not yet a proof of non-opacity. On
// request the driver falls back to the exact definitional checker — but
// only on the sub-history of the flagged shard (the projection onto that
// shard's registers plus the lifecycle events of the transactions touching
// them), so the exponential adjudication runs on a fraction of the
// history. Flags whose structured kind already proves non-opacity
// (proves_non_opaque) are adjudicated kNo directly without the search. A
// fallback verdict refers to that sub-history: kYes means the flag was
// conservative as far as shard-local phenomena go.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "core/online.hpp"
#include "core/opacity.hpp"
#include "core/version_order.hpp"

namespace optm::util {
class ThreadPool;  // util/pool.hpp
}

namespace optm::core {

struct ShardVerifyOptions {
  /// How serialization ranks and version intervals are assigned (see
  /// version_order.hpp). kCommitOrder is PR 1's behavior, byte for byte.
  VersionOrderPolicy policy = VersionOrderPolicy::kCommitOrder;
  /// Number of register shards; 0 picks min(#registers, pool size).
  std::size_t num_shards = 0;
  /// Worker threads for pass 1; 0 picks std::thread::hardware_concurrency.
  /// Ignored by the overload taking an external pool.
  std::size_t num_threads = 0;
  /// Adjudicate flagged shards with the exact definitional checker.
  bool definitional_fallback = false;
  /// Skip the fallback when the flagged shard's sub-history has more
  /// transactions than this (the definitional check is exponential).
  std::size_t fallback_max_txs = 8;
  /// DFS state budget handed to the definitional checker.
  std::uint64_t fallback_max_states = 200'000;
};

/// Resolved worker/shard counts after applying the "0 = auto" defaults.
struct VerifyConcurrency {
  std::size_t threads{1};  // worker threads (>= 1)
  std::size_t shards{1};   // register shards (>= 1)
};

/// THE one resolution rule behind every `num_shards` / `num_threads`
/// option pair in the verification drivers (ShardVerifyOptions,
/// StreamVerifyOptions, ParallelStreamCertifier::Options): 0 threads means
/// std::thread::hardware_concurrency() (at least 1), 0 shards means
/// min(#registers, threads) (at least 1). Explicit values pass through
/// unclamped — a caller may deliberately oversubscribe a one-core box
/// (the conformance fuzz does).
[[nodiscard]] VerifyConcurrency resolve_verify_concurrency(
    std::size_t num_registers, std::size_t num_shards,
    std::size_t num_threads) noexcept;

inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// One certificate flag. `shard` is the register shard the flag is
/// attributable to (kNoShard for global well-formedness flags), `kind` the
/// structured classification adjudication dispatches on, and
/// `adjudication` the definitional verdict of that shard's sub-history
/// when the fallback ran (kUnknown otherwise).
struct ShardFlag {
  std::size_t pos{0};
  std::string reason;
  CertFlagKind kind{CertFlagKind::kNone};
  TxId tx{kNoTx};
  std::size_t shard{kNoShard};
  Verdict adjudication{Verdict::kUnknown};
  std::string adjudication_reason;
};

struct ParallelVerifyResult {
  /// No flag anywhere: the history is certified opaque prefix-by-prefix
  /// (Theorem 2 + the §5.2 discipline), exactly as a clean run of
  /// OnlineCertificateMonitor would certify it.
  bool certified{false};
  /// Earliest flag, monitor-compatible (same position the streaming
  /// monitor latches on).
  std::optional<OnlineViolation> violation;
  /// Every flag found, sorted by position. The streaming monitor stops at
  /// the first; the offline driver keeps going, which is what lets the
  /// fallback adjudicate each flagged shard independently.
  std::vector<ShardFlag> flags;
  /// kBlindWriteSmart only: the certified §3.6 witness order when a
  /// reordering repaired every window flag (certified is then true).
  std::vector<TxId> smart_order;
  std::size_t shards_used{0};
  std::size_t events{0};
};

/// Verify `h` with a private thread pool (options.num_threads workers).
/// Throws std::invalid_argument unless `h` is an all-register history
/// (same precondition as OnlineCertificateMonitor).
[[nodiscard]] ParallelVerifyResult verify_history_sharded(
    const History& h, const ShardVerifyOptions& options = {});

/// Same, reusing an externally owned pool (for repeated verification runs).
[[nodiscard]] ParallelVerifyResult verify_history_sharded(
    const History& h, util::ThreadPool& pool,
    const ShardVerifyOptions& options = {});

/// The projection used by the definitional fallback: all operation events
/// on the given registers, plus the tryC/C/tryA/A events of every
/// transaction with at least one such operation. Exposed for tests.
[[nodiscard]] History project_registers(const History& h,
                                        const std::vector<ObjId>& registers);

}  // namespace optm::core
