// The shared --stm / --policy / --window-free command-line vocabulary.
//
// Every pipeline binary (recorded_soak, checker_tool, online_monitor_demo,
// the benchmarks' metadata tables) speaks the same three dimensions:
// which runtime records, which version-order policy certifies, and
// whether recording is windowed or window-free. This helper registers
// and parses them in ONE place so the binaries cannot drift apart —
// the string forms also mirror the optm-soak-v1 JSON fields and the
// binary log's segment-header metadata (log/format.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/version_order.hpp"
#include "stm/api.hpp"
#include "util/cli.hpp"

namespace optm::stm {

struct RunFlags {
  std::string stm = "tl2";
  core::VersionOrderPolicy policy = core::VersionOrderPolicy::kCommitOrder;
  bool window_free = false;
  /// Recorder stamp-batch grain (Recorder::Options::stamp_batch): events
  /// per global-clock ticket. 1 = per-event stamping (today's behavior).
  std::uint32_t stamp_batch = 1;

  /// The optm-soak-v1 / log-header spelling of the recording mode.
  [[nodiscard]] const char* window_mode() const noexcept {
    return window_free ? "window-free" : "windowed";
  }
  [[nodiscard]] const char* policy_name() const noexcept {
    return core::to_string(policy);
  }
};

/// Register --stm, --policy and --window-free on `cli` with the given
/// defaults.
void add_run_flags(util::Cli& cli, const RunFlags& defaults = {});

/// Read the three flags back out of a successfully parsed `cli`.
/// Prints a diagnostic and returns nullopt on an unknown policy name.
[[nodiscard]] std::optional<RunFlags> parse_run_flags(const util::Cli& cli);

/// make_stm + set_window_free with the standard diagnostics: nullptr
/// (after printing to stderr) for an unknown runtime or a runtime that
/// cannot record window-free.
[[nodiscard]] std::unique_ptr<Stm> make_run_stm(const RunFlags& flags,
                                                std::size_t num_vars);

/// Register --log-pipeline=on|off (default on): the durable writer's
/// background segment prep + deferred seal (log::WriterOptions::pipeline).
/// One helper so every log-writing binary spells the knob identically.
void add_log_pipeline_flag(util::Cli& cli);

/// Read --log-pipeline back out. Prints a diagnostic and returns nullopt
/// on anything but "on"/"off".
[[nodiscard]] std::optional<bool> parse_log_pipeline_flag(
    const util::Cli& cli);

}  // namespace optm::stm
