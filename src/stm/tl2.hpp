// TL2-style STM (Dice, Shalev, Shavit — DISC'06), the paper's running
// example of an opaque, invisible-read, single-version TM that escapes the
// Ω(k) bound by NOT being progressive (§6.2):
//
//   "TL2 has a constant time complexity, although it ensures opacity, uses
//    invisible reads, and is single-version. That is because TL2 is not
//    progressive: it may forcefully abort a transaction Ti that conflicts
//    with a concurrent transaction Tk, even if Ti invokes a conflicting
//    operation after Tk commits."
//
// Algorithm: global version clock; per-variable versioned lock. A
// transaction samples the clock at begin (rv). Reads are invisible and
// validated in O(1) against rv (version > rv => abort, even when the writer
// is long gone — the non-progressive abort). Writes are buffered; commit
// locks the write set, advances the clock, revalidates the read set,
// writes back and releases with the new version.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class Tl2Stm final : public RuntimeBase {
 public:
  explicit Tl2Stm(std::size_t num_vars);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "tl2",
            .invisible_reads = true,
            .single_version = true,
            .progressive = false,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  // Versioned lock encoding: bit 0 = locked, bits 63..1 = version.
  static constexpr std::uint64_t kLockedBit = 1;
  [[nodiscard]] static constexpr bool locked(std::uint64_t vl) noexcept {
    return (vl & kLockedBit) != 0;
  }
  [[nodiscard]] static constexpr std::uint64_t version_of(std::uint64_t vl) noexcept {
    return vl >> 1;
  }
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint64_t version) noexcept {
    return version << 1;
  }

  struct VarMeta {
    sim::BaseWord lock_ver;  // versioned lock
    sim::BaseWord value;
  };

  /// One write-set entry with its pre-lock version, in the commit's
  /// VarId lock order (see commit()).
  struct Locked {
    VarId var;
    std::uint64_t value;
    std::uint64_t version;
  };

  struct Slot {
    bool active = false;
    bool rv_sampled = false;  // lazy rv (see ensure_rv)
    std::uint64_t rv = 0;     // read version: clock sample at first access
    std::vector<ReadEntry> rs;
    WriteSet ws;
    std::vector<Locked> lock_order;  // commit scratch, capacity reused
  };

  /// Lazy rv: the clock is sampled at the FIRST operation rather than at
  /// begin(). The paper's real-time order ≺_H is defined by a
  /// transaction's first EVENT; an rv predating it would let a read-only
  /// transaction serialize before transactions that completed before it
  /// issued anything (a ≺_H violation the §5.4 certificate rejects).
  void ensure_rv(sim::ThreadCtx& ctx, Slot& slot) {
    if (!slot.rv_sampled) {
      slot.rv = clock_.read(ctx);
      slot.rv_sampled = true;
    }
  }

  /// Abort in the middle of an operation (A instead of a response).
  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  sim::GlobalClock clock_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
