// TSortedList: a transactional sorted linked list with set semantics —
// the classic STM workload (DSTM's IntSet benchmark; also the paper's §1
// "dynamic-sized data structures" motivation via [14]).
//
// Layout over STM variables (fixed node pool, no dynamic allocation):
//   var 0                   : head  — index of the first node (0 = nil)
//   var 1                   : free  — head of the free list
//   var 2 + 2i              : node i's value
//   var 2 + 2i + 1          : node i's next (index, 0 = nil)
// Node indices are 1-based so 0 can mean nil.
//
// All operations run inside the caller's transaction (TxHandle), so a
// single transaction can compose several list operations atomically —
// the programming model §1 promises.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "stm/api.hpp"

namespace optm::stm {

class TSortedList {
 public:
  /// The list needs `2 + 2 * capacity` variables starting at `base`.
  TSortedList(VarId base, std::uint32_t capacity) noexcept
      : base_(base), capacity_(capacity) {}

  [[nodiscard]] static constexpr std::size_t vars_needed(
      std::uint32_t capacity) noexcept {
    return 2 + 2 * static_cast<std::size_t>(capacity);
  }

  /// One-time initialization (inside a transaction): builds the free list.
  void init(TxHandle& tx) const {
    tx.write(head_var(), kNil);
    for (std::uint32_t i = 1; i <= capacity_; ++i) {
      tx.write(next_var(i), i < capacity_ ? i + 1 : kNil);
    }
    tx.write(free_var(), capacity_ > 0 ? 1 : kNil);
  }

  /// Insert `value`; returns false if already present. Throws
  /// std::length_error when the pool is exhausted.
  bool insert(TxHandle& tx, std::int64_t value) const {
    std::uint64_t prev = kNil;
    std::uint64_t cur = tx.read(head_var());
    while (cur != kNil) {
      const auto v = static_cast<std::int64_t>(tx.read(value_var(cur)));
      if (v == value) return false;
      if (v > value) break;
      prev = cur;
      cur = tx.read(next_var(cur));
    }
    const std::uint64_t node = tx.read(free_var());
    if (node == kNil) throw std::length_error("TSortedList: pool exhausted");
    tx.write(free_var(), tx.read(next_var(node)));
    tx.write(value_var(node), static_cast<std::uint64_t>(value));
    tx.write(next_var(node), cur);
    if (prev == kNil) {
      tx.write(head_var(), node);
    } else {
      tx.write(next_var(prev), node);
    }
    return true;
  }

  /// Erase `value`; returns false if absent.
  bool erase(TxHandle& tx, std::int64_t value) const {
    std::uint64_t prev = kNil;
    std::uint64_t cur = tx.read(head_var());
    while (cur != kNil) {
      const auto v = static_cast<std::int64_t>(tx.read(value_var(cur)));
      if (v == value) {
        const std::uint64_t next = tx.read(next_var(cur));
        if (prev == kNil) {
          tx.write(head_var(), next);
        } else {
          tx.write(next_var(prev), next);
        }
        tx.write(next_var(cur), tx.read(free_var()));  // recycle
        tx.write(free_var(), cur);
        return true;
      }
      if (v > value) return false;
      prev = cur;
      cur = tx.read(next_var(cur));
    }
    return false;
  }

  [[nodiscard]] bool contains(TxHandle& tx, std::int64_t value) const {
    std::uint64_t cur = tx.read(head_var());
    while (cur != kNil) {
      const auto v = static_cast<std::int64_t>(tx.read(value_var(cur)));
      if (v == value) return true;
      if (v > value) return false;
      cur = tx.read(next_var(cur));
    }
    return false;
  }

  [[nodiscard]] std::uint64_t size(TxHandle& tx) const {
    std::uint64_t count = 0;
    for (std::uint64_t cur = tx.read(head_var()); cur != kNil;
         cur = tx.read(next_var(cur))) {
      ++count;
    }
    return count;
  }

  /// Sum of elements — a whole-structure read-only scan (the workload that
  /// separates multi-version from single-version designs).
  [[nodiscard]] std::int64_t sum(TxHandle& tx) const {
    std::int64_t total = 0;
    for (std::uint64_t cur = tx.read(head_var()); cur != kNil;
         cur = tx.read(next_var(cur))) {
      total += static_cast<std::int64_t>(tx.read(value_var(cur)));
    }
    return total;
  }

  /// Structural invariant: strictly sorted, length within capacity.
  [[nodiscard]] bool invariant_holds(TxHandle& tx) const {
    std::uint64_t cur = tx.read(head_var());
    std::uint64_t count = 0;
    bool first = true;
    std::int64_t last = 0;
    while (cur != kNil) {
      if (++count > capacity_) return false;  // cycle or corruption
      const auto v = static_cast<std::int64_t>(tx.read(value_var(cur)));
      if (!first && v <= last) return false;
      last = v;
      first = false;
      cur = tx.read(next_var(cur));
    }
    return true;
  }

 private:
  static constexpr std::uint64_t kNil = 0;

  [[nodiscard]] VarId head_var() const noexcept { return base_; }
  [[nodiscard]] VarId free_var() const noexcept { return base_ + 1; }
  [[nodiscard]] VarId value_var(std::uint64_t node) const noexcept {
    return base_ + 2 + 2 * (static_cast<VarId>(node) - 1);
  }
  [[nodiscard]] VarId next_var(std::uint64_t node) const noexcept {
    return base_ + 2 + 2 * (static_cast<VarId>(node) - 1) + 1;
  }

  VarId base_;
  std::uint32_t capacity_;
};

}  // namespace optm::stm
