#include "stm/mv.hpp"

#include <algorithm>

#include "util/spin.hpp"

namespace optm::stm {

MvStm::MvStm(std::size_t num_vars, std::size_t depth)
    : RuntimeBase(num_vars), depth_(depth == 0 ? 1 : depth), vars_(num_vars) {
  // Ring slot 0 holds the initial version (stamp 0, value 0): one install.
  for (auto& padded : vars_) {
    padded->ring = std::vector<Version>(depth_);
    padded->seqlock.init(2);
  }
  // Reads are snapshot-consistent by construction and stamped with their
  // (2·snapshot+1, version stamp) pair; update commits ticket after
  // locking, before validating (see mv.hpp) — the preconditions for
  // dropping the recorder windows alongside the already-window-free
  // read-only commit path.
  window_free_supported_ = true;
}

void MvStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.read_only = false;
  slot.snapped = false;
  slot.snapshot = 0;
  slot.rs.clear();
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

void MvStm::begin_read_only(sim::ThreadCtx& ctx) {
  begin(ctx);
  slots_[ctx.id()]->read_only = true;
}

bool MvStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  ensure_snapshot(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, 2 * slot.snapshot + 1);  // serialize at the snapshot
  return false;
}

bool MvStm::read_version(sim::ThreadCtx& ctx, VarId var, std::uint64_t bound,
                         std::uint64_t& stamp, std::uint64_t& value) {
  VarMeta& meta = *vars_[var];
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t s1 = meta.seqlock.load(ctx);
    if (s1 & 1) {  // writer installing
      backoff.pause();
      continue;
    }
    const std::uint64_t installs = s1 / 2;
    bool found = false;
    const std::size_t scan = std::min<std::size_t>(depth_, installs);
    for (std::size_t i = 0; i < scan; ++i) {
      const std::size_t pos = (installs - 1 - i) % depth_;
      const std::uint64_t st = meta.ring[pos].stamp.load(ctx);
      if (st <= bound) {
        stamp = st;
        value = meta.ring[pos].value.load(ctx);
        found = true;
        break;
      }
    }
    if (meta.seqlock.load(ctx) != s1) {
      backoff.pause();  // ring changed under us
      continue;
    }
    return found;
  }
}

bool MvStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  const RecWindow window = rec_sample_window();
  ensure_snapshot(ctx, slot);
  std::uint64_t stamp = 0;
  std::uint64_t val = 0;
  // Snapshot read (JVSTM-style): the newest version no newer than the
  // begin-time snapshot. Consistent by construction — no per-read
  // validation, O(depth) cost independent of k. Fails only if the
  // snapshot's version was evicted from the bounded ring.
  if (!read_version(ctx, var, slot.snapshot, stamp, val)) return fail_op(ctx);
  if (!slot.read_only) slot.rs.push_back({var, stamp});
  out = val;
  // The read-stamp pair: `stamp` is the version's writer ticket (its
  // stamp-space open rank is 2·stamp) and the read just proved it the
  // newest version at snapshot 2·snapshot+1 — all a stamp-space
  // certificate needs, with or without the sampling window.
  rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.snapshot + 1, stamp);
  return true;
}

bool MvStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  if (slot.read_only) return fail_op(ctx);  // declared read-only
  ensure_snapshot(ctx, slot);  // writes pin the snapshot too (first access)
  slot.ws.upsert(var, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool MvStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  if (slot.ws.empty()) {
    ensure_snapshot(ctx, slot);
    slot.active = false;
    ++ctx.stats.commits;
    // All reads came from the begin-time snapshot: serialize there. This is
    // the H4 optimization — read-only transactions commit regardless of
    // concurrent updates. The C event carries the snapshot rank
    // (2·snapshot+1), so the record POSITION of C is immaterial to the
    // version order and no sampling window is taken: read-only commits no
    // longer touch the shared window lock, and the SnapshotRank
    // version-order policy reads the stamp straight off the event.
    rec_commit(ctx, 2 * slot.snapshot + 1);
    return true;
  }

  const RecWindow window = rec_commit_window(ctx);
  ensure_snapshot(ctx, slot);

  // Lock write-set seqlocks in VarId order.
  std::vector<WriteEntry> order = slot.ws.entries();
  std::sort(order.begin(), order.end(),
            [](const WriteEntry& a, const WriteEntry& b) { return a.var < b.var; });

  auto unlock_upto = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      VarMeta& meta = *vars_[order[i].var];
      const std::uint64_t s = meta.seqlock.load(ctx);
      meta.seqlock.store(ctx, s - 1);  // restore even (no install)
    }
  };
  auto fail = [&](std::size_t locked_upto) {
    unlock_upto(locked_upto);
    slot.active = false;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx, 2 * slot.snapshot + 1);
    return false;
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    VarMeta& meta = *vars_[order[i].var];
    util::Backoff backoff;
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::uint64_t s = meta.seqlock.load(ctx);
      if ((s & 1) == 0 && meta.seqlock.cas(ctx, s, s + 1)) break;
      if (attempt >= 32) return fail(i);
      backoff.pause();
    }
  }

  // Ticket BEFORE validation (TL2's lock → ticket → validate): a rival
  // overwriting anything we read must lock that variable before drawing
  // ITS ticket, and our validation below sees the variable unlocked — so
  // the rival's ticket is drawn after our ticket, and the version we read
  // closes strictly above our serialization rank 2·wv. That ordering is
  // what keeps the stamps truthful once the commit window is gone; a
  // ticket wasted on a failed validation leaves a harmless clock gap.
  const std::uint64_t wv = clock_.advance(ctx);

  // Validate: nothing read may have a version newer than our snapshot —
  // otherwise serializing our writes at wv would reorder a conflicting
  // committed update (first committer wins).
  {
    const std::uint64_t before = ctx.steps.total();
    for (const ReadEntry& r : slot.rs) {
      VarMeta& meta = *vars_[r.var];
      const std::uint64_t s = meta.seqlock.load(ctx);
      const bool locked_by_me = slot.ws.find(r.var) != nullptr;
      if ((s & 1) != 0 && !locked_by_me) {
        ctx.stats.validation_steps += ctx.steps.total() - before;
        return fail(order.size());
      }
      const std::uint64_t installs = (locked_by_me ? s - 1 : s) / 2;
      const std::size_t newest = (installs - 1) % depth_;
      if (meta.ring[newest].stamp.load(ctx) > slot.snapshot) {
        ctx.stats.validation_steps += ctx.steps.total() - before;
        return fail(order.size());
      }
    }
    ctx.stats.validation_steps += ctx.steps.total() - before;
  }

  rec_commit(ctx, 2 * wv);  // commit point: validated while holding locks

  // Install the new versions and release (seqlock advances to a fresh even
  // value, signalling one more install).
  for (const WriteEntry& w : order) {
    VarMeta& meta = *vars_[w.var];
    const std::uint64_t s = meta.seqlock.load(ctx);  // odd
    const std::uint64_t installs = (s - 1) / 2;
    const std::size_t pos = installs % depth_;
    meta.ring[pos].stamp.store(ctx, wv);
    meta.ring[pos].value.store(ctx, w.value);
    meta.seqlock.store(ctx, s + 1);  // even, installs + 1
  }
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void MvStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  ensure_snapshot(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, 2 * slot.snapshot + 1);
}

}  // namespace optm::stm
