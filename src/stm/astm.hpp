// ASTM-style adaptive STM (Marathe, Scherer III, Scott — DISC'05), the
// paper's second named tight witness of the lower bound (§6.2):
//
//   "The lower bound is tight because DSTM and ASTM are progressive and
//    single-version, ensure opacity and use invisible reads, and have the
//    time complexity of Θ(k) (with most contention managers)."
//
// ASTM's contribution over DSTM is WHEN ownership of written variables is
// acquired. DSTM acquires eagerly, at the write operation itself, which
// exposes the writer to contention-manager duels for the rest of the
// transaction. ASTM can defer acquisition to commit time (lazy acquire):
// writes buffer locally at zero shared-memory cost, and all write-write
// conflicts are resolved in one batch at commit. Neither choice changes
// the §6 design-space coordinates — reads stay invisible, storage stays
// single-version, aborts happen only on live conflicts — so per-read
// incremental validation remains Θ(|read set|), and Theorem 3 applies to
// both modes identically (bench/bench_adaptive measures exactly this
// invariance, plus the commit-cost asymmetry the modes trade).
//
// The adaptive policy mirrors the published heuristic at history scale:
// a process whose lazy transactions keep losing commit-time acquisition
// duels switches to eager acquire (fail fast, hold longer); a process
// whose eager transactions keep committing without ever meeting a rival
// switches back to lazy (stop paying acquisition pessimism up front).
//
// Recording follows DSTM's orec-stamp story verbatim (see dstm.hpp): a
// global commit clock tickets update commits through the kCommitting
// status state (entered by CAS after the whole write set is acquired, so
// the intent is visible through every owned orec before the ticket
// exists), write-backs store 2·wv as the version word, and validation
// draws its snapshot before examining any entry while waiting out
// kCommitting/kCommitted owners. Reads are stamped (2·rv+1, version/2),
// which is what lets both acquisition modes record window-free. Lazy
// acquisition changes only WHEN orecs are claimed — claiming still
// happens while kActive (rivals can duel and kill us throughout), so the
// stamp argument is unchanged.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sim/base_object.hpp"
#include "stm/contention.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

/// Ownership-acquisition policy for AstmStm.
enum class AcquirePolicy : std::uint8_t {
  kAdaptive,    // per-process hysteresis between lazy and eager (default)
  kForceEager,  // always acquire at the write operation (DSTM-like)
  kForceLazy,   // always acquire at commit (OSTM-like)
};

class AstmStm final : public RuntimeBase {
 public:
  explicit AstmStm(std::size_t num_vars,
                   std::unique_ptr<ContentionManager> cm = nullptr,
                   AcquirePolicy policy = AcquirePolicy::kAdaptive);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "astm",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

  /// True if the NEXT transaction of this process would acquire eagerly.
  [[nodiscard]] bool eager_mode(std::uint32_t process) const noexcept {
    return mode_[process]->eager;
  }
  /// Lazy<->eager transitions taken by this process so far (adaptive only).
  [[nodiscard]] std::uint64_t mode_switches(std::uint32_t process) const noexcept {
    return mode_[process]->switches;
  }

  // Adaptation thresholds (fixed, documented for the tests):
  /// Consecutive commit-time ("late") aborts that flip lazy -> eager. In
  /// lazy mode EVERY conflict — acquisition duel or stale read — surfaces
  /// only at commit, after the whole transaction has run; the policy
  /// reacts to that lateness regardless of which conflict fired.
  static constexpr std::uint32_t kLazyLossesToEager = 2;
  /// Consecutive uncontended eager commits that flip eager -> lazy.
  static constexpr std::uint32_t kEagerCleanToLazy = 16;

 private:
  // Transaction identity and variable metadata follow the DSTM layout:
  // revocable ownership via a per-process status word (epoch << 2 | state),
  // per-variable owner word ((slot + 1) << 32 | epoch), and a seqlock-style
  // version (odd while a write-back is in flight) whose stable value is
  // the writer's 2·wv commit ticket. kCommitting is the stamp authority
  // (dstm.hpp): neither killable nor stealable, resolves in a bounded
  // number of the owner's own steps.
  enum State : std::uint64_t {
    kActive = 0,
    kCommitted = 1,
    kAborted = 2,
    kCommitting = 3,
  };

  [[nodiscard]] static constexpr std::uint64_t status_word(std::uint64_t epoch,
                                                           State s) noexcept {
    return (epoch << 2) | s;
  }
  [[nodiscard]] static constexpr State state_of(std::uint64_t w) noexcept {
    return static_cast<State>(w & 3);
  }
  [[nodiscard]] static constexpr std::uint64_t epoch_of(std::uint64_t w) noexcept {
    return w >> 2;
  }
  [[nodiscard]] static constexpr std::uint64_t owner_word(std::uint32_t slot,
                                                          std::uint64_t epoch) noexcept {
    return (static_cast<std::uint64_t>(slot + 1) << 32) | (epoch & 0xffffffffULL);
  }

  struct VarMeta {
    sim::BaseWord owner;    // 0 = unowned
    sim::BaseWord value;    // latest committed value (single-version)
    sim::BaseWord version;  // bumped by 2 per write-back; odd = in flight
  };

  struct OwnedEntry {
    VarId var;
    std::uint64_t acq_version;  // version at acquisition (for write-back)
  };

  struct Slot {
    bool active = false;
    bool eager = false;  // acquisition mode of the CURRENT transaction
    std::uint64_t epoch = 0;
    /// Clock snapshot of the last SUCCESSFUL validation (the stamp half
    /// of reads recorded by it; serialization point of read-only commits
    /// and aborts).
    std::uint64_t rv = 0;
    bool rv_sampled = false;  // any validation succeeded this transaction
    std::vector<ReadEntry> rs;
    WriteSet pending;               // buffered values (both modes)
    std::vector<OwnedEntry> owned;  // acquired ownership records
    CmTxView cm_view;
    std::uint32_t cm_retries = 0;
    bool met_rival = false;  // any CM duel this transaction (adaptation input)
  };

  /// Per-process adaptation state; read by begin(), written at completion.
  struct Mode {
    bool eager = false;  // ASTM defaults to lazy acquire
    std::uint32_t lazy_losses = 0;
    std::uint32_t eager_clean = 0;
    std::uint64_t switches = 0;
  };

  /// Θ(|read set|) incremental validation — the Theorem 3 cost. Draws the
  /// validation snapshot (slot.rv on success) before touching any entry
  /// and waits out kCommitting/kCommitted owners (the orec-stamp story,
  /// dstm.hpp). `expected` is the state our own status word must hold
  /// when we own variables (kCommitting at commit time).
  [[nodiscard]] bool validate(sim::ThreadCtx& ctx, Slot& slot,
                              State expected = kActive);

  /// Serialization stamp (2·rv+1) for an abort record: the last
  /// successful validation, or the abort instant when none succeeded.
  [[nodiscard]] std::uint64_t abort_stamp(sim::ThreadCtx& ctx, Slot& slot);

  /// CAS-acquire `var`'s ownership record, duelling live owners through the
  /// contention manager. Returns false if the CM ruled kAbortSelf.
  [[nodiscard]] bool acquire(sim::ThreadCtx& ctx, Slot& slot, VarId var);

  void release_owned(sim::ThreadCtx& ctx, Slot& slot);

  /// Record the outcome of a finished transaction with the adaptive policy
  /// (no-op under kForceEager / kForceLazy). `late_abort` marks an abort
  /// that fired at commit time rather than at an operation.
  void adapt(std::uint32_t process, const Slot& slot, bool committed,
             bool late_abort);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<sim::BaseWord>, sim::kMaxThreads> status_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
  std::array<util::Padded<Mode>, sim::kMaxThreads> mode_;
  std::unique_ptr<ContentionManager> cm_;
  /// The commit-ticket clock (the orec-stamp story, dstm.hpp).
  sim::GlobalClock clock_;
  AcquirePolicy policy_;
  std::atomic<std::uint64_t> start_stamps_{0};  // CM metadata (advisory only)
};

}  // namespace optm::stm
