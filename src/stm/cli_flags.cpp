#include "stm/cli_flags.hpp"

#include <cstdio>
#include <stdexcept>

#include "stm/factory.hpp"

namespace optm::stm {

void add_run_flags(util::Cli& cli, const RunFlags& defaults) {
  cli.flag("stm", defaults.stm,
           "runtime: tl2|tiny|norec|dstm|astm|visible|mv|...");
  cli.flag("policy", core::to_string(defaults.policy),
           "version-order policy: commit-order|blind-write-smart|"
           "snapshot-rank|stamped-read");
  cli.flag("window-free", defaults.window_free ? "true" : "false",
           "record without sampling windows (stamped reads)");
  cli.flag("stamp-batch", static_cast<std::int64_t>(defaults.stamp_batch),
           "events per recorder stamp ticket (1 = per-event stamping)");
}

std::optional<RunFlags> parse_run_flags(const util::Cli& cli) {
  RunFlags flags;
  flags.stm = cli.get("stm");
  flags.window_free = cli.get_bool("window-free");
  const auto policy = core::parse_version_order_policy(cli.get("policy"));
  if (!policy) {
    std::fprintf(stderr,
                 "unknown policy '%s' (expected commit-order, "
                 "blind-write-smart, snapshot-rank or stamped-read)\n",
                 cli.get("policy").c_str());
    return std::nullopt;
  }
  flags.policy = *policy;
  const std::int64_t batch = cli.get_int("stamp-batch");
  if (batch < 1 || batch > static_cast<std::int64_t>(UINT32_MAX)) {
    std::fprintf(stderr, "--stamp-batch must be >= 1 (got %lld)\n",
                 static_cast<long long>(batch));
    return std::nullopt;
  }
  flags.stamp_batch = static_cast<std::uint32_t>(batch);
  return flags;
}

void add_log_pipeline_flag(util::Cli& cli) {
  cli.flag("log-pipeline", "on",
           "durable-log segment pipelining: on = background segment prep "
           "+ deferred seal, off = fully synchronous writer (byte-identical "
           "output either way)");
}

std::optional<bool> parse_log_pipeline_flag(const util::Cli& cli) {
  const std::string value = cli.get("log-pipeline");
  if (value == "on") return true;
  if (value == "off") return false;
  std::fprintf(stderr, "--log-pipeline must be 'on' or 'off' (got '%s')\n",
               value.c_str());
  return std::nullopt;
}

std::unique_ptr<Stm> make_run_stm(const RunFlags& flags, std::size_t num_vars) {
  std::unique_ptr<Stm> stm;
  try {
    stm = make_stm(flags.stm, num_vars);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "unknown stm '%s': %s\n", flags.stm.c_str(), e.what());
    return nullptr;
  }
  if (flags.window_free && !stm->set_window_free(true)) {
    std::fprintf(stderr, "stm '%s' does not support window-free recording\n",
                 flags.stm.c_str());
    return nullptr;
  }
  return stm;
}

}  // namespace optm::stm
