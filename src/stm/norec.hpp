// NOrec-style STM (Dalessandro, Spear, Scott — PPoPP'10), included as an
// ablation for Theorem 3: progressive-in-spirit, single-version, invisible
// reads, opaque — and, exactly as the bound dictates, its worst-case
// per-operation cost is Θ(|read set|): whenever the global sequence lock
// moved, a read must value-revalidate everything read so far. It only
// looks cheap because the Ω(k) work is *amortized* away when there is no
// concurrent commit traffic; the adversarial schedule in
// bench/bench_lower_bound makes the worst case visible.
//
// The entire shared metadata is ONE global sequence lock: no per-variable
// ownership records (hence "NOrec"). Commits serialize on it; reads use
// value-based validation against it.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class NorecStm final : public RuntimeBase {
 public:
  explicit NorecStm(std::size_t num_vars);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "norec",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  struct Slot {
    bool active = false;
    bool rv_sampled = false;  // lazy rv (see ensure_rv)
    std::uint64_t rv = 0;  // seqlock snapshot the read set is valid at
    std::vector<ReadEntry> rs;  // value-based: (var, VALUE read)
    WriteSet ws;
  };

  /// Spin until the sequence lock is even (no committer inside).
  [[nodiscard]] std::uint64_t wait_even(sim::ThreadCtx& ctx);

  /// Lazy rv, for the same ≺_H reason as Tl2Stm::ensure_rv: the snapshot
  /// must not predate the transaction's first event.
  void ensure_rv(sim::ThreadCtx& ctx, Slot& slot) {
    if (!slot.rv_sampled) {
      slot.rv = wait_even(ctx);
      slot.rv_sampled = true;
    }
  }

  /// Value-based revalidation of the whole read set; updates slot.rv.
  /// Returns false on any changed value (the transaction must abort).
  [[nodiscard]] bool revalidate(sim::ThreadCtx& ctx, Slot& slot);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<sim::BaseWord>> values_;
  util::Padded<sim::BaseWord> seqlock_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
