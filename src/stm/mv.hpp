// Multi-version STM (LSA-STM / JVSTM family), the paper's third escape
// route from the Ω(k) bound (§6, footnote 2):
//
//   "For multi-version TM implementations, like LSA-STM or JVSTM, the
//    complexity is not constant. However, it can be bounded by a function
//    independent of k."
//
// Each variable keeps a bounded ring of committed (version, value) pairs
// stamped by a global commit clock. Read-only transactions fix a snapshot
// at begin and read the newest version no newer than the snapshot: they
// never validate and never abort on conflicts (only if their version has
// been evicted from the ring) — exactly the H4 optimization §5.2 describes
// ("multi-version TMs use such optimizations to allow long read-only
// transactions to commit despite concurrent updates"). Update transactions
// read the latest version and validate TL2-style at commit.
//
// Per-operation cost: O(ring depth) — independent of k, as the footnote
// demands; not O(1), which bench/bench_lower_bound makes visible.
//
// Recording: commits stamp their serialization point onto the C event
// (2·wv for updates, 2·snapshot+1 for read-only transactions), which is
// what the core::VersionOrderResolver's SnapshotRank policy certifies
// against — read-only transactions serialize at their snapshot rank, not
// at their C record position, so their C record takes no sampling window.
// Every non-local read is additionally stamped (2·snapshot+1, version
// stamp): the ring slot's stamp is the writer's wv ticket, and the read
// returned the newest version no newer than the snapshot, so the claim
// "version `st` was current at 2·snapshot+1" holds by construction — a
// version with stamp in (st, snapshot] would have been drawn before the
// snapshot was, behind a seqlock the read waits out. Update commits draw
// their ticket AFTER locking the write set and BEFORE validating
// (TL2-style lock → ticket → validate), so an overwriter of anything an
// update read tickets strictly later; with that, the whole runtime
// records window-free (Stm::set_window_free) under the kStampedRead
// policy, update commits included.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class MvStm final : public RuntimeBase {
 public:
  /// `depth` = committed versions retained per variable (>= 1).
  explicit MvStm(std::size_t num_vars, std::size_t depth = 8);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "mv",
            .invisible_reads = true,
            .single_version = false,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  /// Hint that the next transaction of this process is read-only: it will
  /// use snapshot reads (write() then fails the transaction).
  void begin_read_only(sim::ThreadCtx& ctx);
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  // Per-variable seqlock: value = 2 * installs (odd while a writer
  // installs). The newest ring slot is (installs - 1) % depth.
  struct Version {
    sim::BaseWord stamp;  // global-clock stamp of the committing tx
    sim::BaseWord value;
  };
  struct VarMeta {
    sim::BaseWord seqlock;
    std::vector<Version> ring;
  };

  struct Slot {
    bool active = false;
    bool read_only = false;
    bool snapped = false;        // snapshot taken yet? (lazy, LSA-style)
    std::uint64_t snapshot = 0;  // upper bound for read-only snapshot reads
    std::vector<ReadEntry> rs;   // update transactions: (var, stamp read)
    WriteSet ws;
  };

  /// Read the newest (stamp, value) with stamp <= bound. Returns false if
  /// every retained version is newer than bound (evicted).
  [[nodiscard]] bool read_version(sim::ThreadCtx& ctx, VarId var,
                                  std::uint64_t bound, std::uint64_t& stamp,
                                  std::uint64_t& value);

  /// Lazy snapshot (LSA-style): the snapshot is sampled at the FIRST
  /// operation, not at begin(). The paper's real-time order is defined by a
  /// transaction's first EVENT, so a snapshot older than the first
  /// operation could make a later stale read violate ≺_H (a writer that
  /// committed between begin and the first operation must be visible).
  void ensure_snapshot(sim::ThreadCtx& ctx, Slot& slot) {
    if (!slot.snapped) {
      slot.snapshot = clock_.read(ctx);
      slot.snapped = true;
    }
  }

  bool fail_op(sim::ThreadCtx& ctx);

  std::size_t depth_;
  std::vector<util::Padded<VarMeta>> vars_;
  sim::GlobalClock clock_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
