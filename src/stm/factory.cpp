#include "stm/factory.hpp"

#include <stdexcept>
#include <string>

#include "stm/astm.hpp"
#include "stm/contention.hpp"
#include "stm/dstm.hpp"
#include "stm/glock.hpp"
#include "stm/mv.hpp"
#include "stm/norec.hpp"
#include "stm/sistm.hpp"
#include "stm/tiny.hpp"
#include "stm/tl2.hpp"
#include "stm/twopl.hpp"
#include "stm/visible.hpp"
#include "stm/weak.hpp"

namespace optm::stm {

std::vector<std::string_view> all_stm_names() {
  return {"dstm", "astm", "tl2", "tiny", "visible", "mv", "norec", "weak",
          "sistm"};
}

std::vector<std::string_view> opaque_stm_names() {
  return {"dstm", "astm", "tl2", "tiny", "visible", "mv", "norec"};
}

std::unique_ptr<Stm> make_stm(std::string_view name, std::size_t num_vars) {
  std::string_view base = name;
  std::string_view cm_name;
  if (const auto slash = name.find('/'); slash != std::string_view::npos) {
    base = name.substr(0, slash);
    cm_name = name.substr(slash + 1);
  }
  auto cm = [&]() -> std::unique_ptr<ContentionManager> {
    return cm_name.empty() ? nullptr : make_contention_manager(cm_name);
  };

  if (base == "tl2") return std::make_unique<Tl2Stm>(num_vars);
  if (base == "tiny") return std::make_unique<TinyStm>(num_vars);
  if (base == "dstm") return std::make_unique<DstmStm>(num_vars, cm());
  if (base == "astm") return std::make_unique<AstmStm>(num_vars, cm());
  if (base == "astm-eager") {
    return std::make_unique<AstmStm>(num_vars, cm(), AcquirePolicy::kForceEager);
  }
  if (base == "astm-lazy") {
    return std::make_unique<AstmStm>(num_vars, cm(), AcquirePolicy::kForceLazy);
  }
  if (base == "visible") return std::make_unique<VisibleReadStm>(num_vars, cm());
  if (base == "mv") return std::make_unique<MvStm>(num_vars);
  if (base == "norec") return std::make_unique<NorecStm>(num_vars);
  if (base == "weak") return std::make_unique<WeakStm>(num_vars);
  if (base == "sistm") return std::make_unique<SiStm>(num_vars);
  if (base == "glock") return std::make_unique<GlobalLockStm>(num_vars);
  if (base == "twopl") return std::make_unique<TwoPlStm>(num_vars);
  if (base == "twopl-nowait") {
    return std::make_unique<TwoPlStm>(num_vars, WaitPolicy::kNoWait);
  }
  throw std::invalid_argument("unknown STM: " + std::string(name));
}

}  // namespace optm::stm
