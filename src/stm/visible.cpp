#include "stm/visible.hpp"

#include "util/spin.hpp"

namespace optm::stm {

VisibleReadStm::VisibleReadStm(std::size_t num_vars,
                               std::unique_ptr<ContentionManager> cm)
    : RuntimeBase(num_vars),
      vars_(num_vars),
      cm_(cm != nullptr ? std::move(cm) : std::make_unique<AggressiveCm>()) {}

void VisibleReadStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  // Reader bits are cleared lazily, here: completed transactions leave
  // their bits behind (writers skip non-Active readers in the kill-scan),
  // which keeps abort and commit paths O(1) — the amortization RSTM uses.
  clear_read_bits(ctx, slot);
  slot.active = true;
  ++slot.epoch;
  slot.ws.clear();
  slot.cm_view.start_stamp = start_stamps_.fetch_add(1) + 1;
  slot.cm_view.ops_executed = 0;
  slot.cm_view.retries = slot.cm_retries;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kActive));
  ++ctx.stats.begins;
  rec_begin(ctx);
}

void VisibleReadStm::clear_read_bits(sim::ThreadCtx& ctx, Slot& slot) {
  const std::uint64_t my_bit = 1ULL << ctx.id();
  for (VarId var : slot.rs) (void)vars_[var]->readers.fetch_and(ctx, ~my_bit);
  slot.rs.clear();
}

void VisibleReadStm::release_owned(sim::ThreadCtx& ctx, Slot& slot) {
  for (const OwnedEntry& e : slot.ws) {
    std::uint64_t expect = owner_word(ctx.id(), slot.epoch);
    (void)vars_[e.var]->owner.cas(ctx, expect, 0);
  }
  slot.ws.clear();
}

bool VisibleReadStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;  // reader bits cleared lazily at next begin
  ++slot.cm_retries;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx);
  return false;
}

bool VisibleReadStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  for (const OwnedEntry& e : slot.ws) {
    if (e.var == var) {
      out = e.value;
      rec_ret(ctx, var, core::OpCode::kRead, 0, out);
      return true;
    }
  }

  VarMeta& meta = *vars_[var];
  // The visible-read announcement (reader-bit RMW) commutes with rival
  // samples, so sampling windows may overlap it safely.
  const RecWindow window = rec_sample_window();

  // Announce FIRST (flag), then examine the owner (check): every writer
  // either sees our bit at its kill-scan or is seen by us here.
  const std::uint64_t my_bit = 1ULL << ctx.id();
  (void)meta.readers.fetch_or(ctx, my_bit);  // the visible shared write
  slot.rs.push_back(var);

  util::Backoff backoff;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const std::uint64_t own = meta.owner.load(ctx);
    if (own == 0) break;
    const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
    const std::uint64_t e = own & 0xffffffffULL;
    const std::uint64_t st = status_[s]->load(ctx);
    if (epoch_of(st) != e || state_of(st) == kAborted) break;  // stale: old value valid
    if (state_of(st) == kCommitted) {
      backoff.pause();  // write-back in flight
      continue;
    }
    // Reader/writer conflict with a live owner.
    switch (cm_->resolve(slot.cm_view, slots_[s]->cm_view, attempt)) {
      case CmDecision::kAbortOther: {
        std::uint64_t expect = status_word(e, kActive);
        (void)status_[s]->cas(ctx, expect, status_word(e, kAborted));
        continue;
      }
      case CmDecision::kAbortSelf:
        return fail_op(ctx);
      case CmDecision::kWait:
        backoff.pause();
        continue;
    }
  }

  const std::uint64_t val = meta.value.load(ctx);
  // O(1) validation: if no writer killed us, the whole read set is intact.
  if (!still_active(ctx, slot)) return fail_op(ctx);

  out = val;
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool VisibleReadStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  for (OwnedEntry& e : slot.ws) {
    if (e.var == var) {
      e.value = value;
      rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
      return true;
    }
  }

  VarMeta& meta = *vars_[var];
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  util::Backoff backoff;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint64_t own = meta.owner.load(ctx);
    if (own == 0) {
      if (meta.owner.cas(ctx, own, me)) break;
      continue;
    }
    const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
    const std::uint64_t e = own & 0xffffffffULL;
    const std::uint64_t st = status_[s]->load(ctx);
    if (epoch_of(st) != e || state_of(st) == kAborted) {
      if (meta.owner.cas(ctx, own, me)) break;
      continue;
    }
    if (state_of(st) == kCommitted) {
      backoff.pause();
      continue;
    }
    switch (cm_->resolve(slot.cm_view, slots_[s]->cm_view, attempt)) {
      case CmDecision::kAbortOther: {
        std::uint64_t expect = status_word(e, kActive);
        (void)status_[s]->cas(ctx, expect, status_word(e, kAborted));
        continue;
      }
      case CmDecision::kAbortSelf:
        return fail_op(ctx);
      case CmDecision::kWait:
        backoff.pause();
        continue;
    }
  }

  // Kill-scan: eagerly abort every visible reader (this is what makes the
  // read-path validation O(1)).
  const std::uint64_t readers = vars_[var]->readers.load(ctx);
  for (std::uint32_t s = 0; s < sim::kMaxThreads; ++s) {
    if (s == ctx.id() || ((readers >> s) & 1) == 0) continue;
    const std::uint64_t st = status_[s]->load(ctx);
    if (state_of(st) == kActive) {
      std::uint64_t expect = st;
      (void)status_[s]->cas(ctx, expect, status_word(epoch_of(st), kAborted));
    }
  }

  slot.ws.push_back({var, value});
  if (!still_active(ctx, slot)) return fail_op(ctx);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool VisibleReadStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  const RecWindow window = rec_commit_window(ctx);

  // Commit point: the status CAS. No read-set validation needed — writers
  // abort visible readers eagerly, so still-Active means reads are intact.
  std::uint64_t expect = status_word(slot.epoch, kActive);
  if (!status_[ctx.id()]->cas(ctx, expect,
                              status_word(slot.epoch, kCommitted))) {
    release_owned(ctx, slot);
    slot.active = false;
    ++slot.cm_retries;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx);
    return false;
  }
  rec_commit(ctx);

  for (const OwnedEntry& e : slot.ws) {
    VarMeta& meta = *vars_[e.var];
    meta.value.store(ctx, e.value);
    meta.owner.store(ctx, 0);
  }
  slot.ws.clear();
  slot.active = false;
  slot.cm_retries = 0;
  ++ctx.stats.commits;
  return true;
}

void VisibleReadStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx);
}

}  // namespace optm::stm
