// DSTM-style STM (Herlihy, Luchangco, Moir, Scherer — PODC'03), the
// tight witness of the paper's lower bound (§6):
//
//   "The lower bound is tight because DSTM and ASTM are progressive and
//    single-version, ensure opacity and use invisible reads, and have the
//    time complexity of Θ(k) (with most contention managers)."
//
// Design-space coordinates: eager ownership acquisition on write (revocable
// "virtual locks" — ownership can be stolen after aborting the owner via a
// status-word CAS, the obstruction-free pattern), invisible reads, a single
// committed version per variable, and — the defining cost — *incremental
// validation*: every read re-validates the entire read set, Θ(|read set|)
// steps, because with invisible reads nobody else can warn the transaction
// that a concurrent commit overwrote something it read (the information-
// theoretic core of Theorem 3's proof).
//
// Conflict resolution between writers is delegated to a pluggable
// contention manager (contention.hpp).
//
// RECORDING (the orec-stamp story). DSTM has no global version clock of
// its own, but window-free recording (stm/recorder.hpp) needs every read
// justified by a stamp interval. The runtime therefore publishes its
// serialization points through the machinery it already has — the
// revocable ownership records:
//
//   * a global commit clock hands each update commit a ticket wv; the
//     write-back stores 2·wv as every written variable's version word, so
//     the word a reader samples IS the open rank of the version it read
//     (Event::ver = word / 2);
//   * the ticket is drawn only after the committer CASes its status word
//     to kCommitting — the stamp authority. The status word is exactly
//     what every owned orec points at, so the intent to commit is visible
//     through the data before the ticket exists, and rivals can no longer
//     kill the transaction (their abort CAS expects kActive);
//   * validation draws its snapshot rv from the clock BEFORE examining
//     any read-set entry and waits out owners that are kCommitting or
//     kCommitted (write-back in flight). An entry that passes was
//     therefore current at rv, and any future overwriter enters
//     kCommitting — and draws its ticket — after the check, so its ticket
//     exceeds rv. Reads are stamped (2·rv+1, version/2); read-only and
//     aborted transactions serialize at their last successful
//     validation's 2·rv+1.
//
// A STOLEN orec cannot poison this: stealing requires the victim's status
// to read kAborted (or a stale epoch), so the victim's C is never
// recorded and its buffered writes never reach a version word — the
// stamps a reader may have copied from the victim's era keep naming the
// last committed version, which is still the truth.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sim/base_object.hpp"
#include "stm/contention.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class DstmStm final : public RuntimeBase {
 public:
  explicit DstmStm(std::size_t num_vars,
                   std::unique_ptr<ContentionManager> cm = nullptr);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "dstm",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  // Transaction identity: (slot, epoch). The per-slot status word encodes
  // (epoch << 2) | state; the per-variable owner word encodes
  // ((slot + 1) << 32) | (epoch & 0xffffffff). A stale owner word (epoch
  // mismatch or state == Aborted) denotes a finished transaction whose
  // ownership may be reclaimed; its buffered write never reached `value`.
  // kCommitting is the stamp authority (see the header): entered by CAS
  // before the commit ticket is drawn, it is neither killable (rival
  // aborts CAS from kActive) nor stealable, and resolves to kCommitted or
  // kAborted in a bounded number of the owner's own steps.
  enum State : std::uint64_t {
    kActive = 0,
    kCommitted = 1,
    kAborted = 2,
    kCommitting = 3,
  };

  [[nodiscard]] static constexpr std::uint64_t status_word(std::uint64_t epoch,
                                                           State s) noexcept {
    return (epoch << 2) | s;
  }
  [[nodiscard]] static constexpr State state_of(std::uint64_t w) noexcept {
    return static_cast<State>(w & 3);
  }
  [[nodiscard]] static constexpr std::uint64_t epoch_of(std::uint64_t w) noexcept {
    return w >> 2;
  }
  [[nodiscard]] static constexpr std::uint64_t owner_word(std::uint32_t slot,
                                                          std::uint64_t epoch) noexcept {
    return (static_cast<std::uint64_t>(slot + 1) << 32) | (epoch & 0xffffffffULL);
  }

  struct VarMeta {
    sim::BaseWord owner;    // 0 = unowned
    sim::BaseWord value;    // latest committed value (single-version)
    sim::BaseWord version;  // bumped at each successful write-back
  };

  struct OwnedEntry {
    VarId var;
    std::uint64_t value;        // buffered new value (process-local)
    std::uint64_t acq_version;  // version at acquisition
  };

  struct Slot {
    bool active = false;
    std::uint64_t epoch = 0;
    /// Clock snapshot of the last SUCCESSFUL whole-read-set validation —
    /// the stamp half (2·rv+1) of every read recorded by it, and the
    /// serialization point of read-only commits and aborts.
    std::uint64_t rv = 0;
    bool rv_sampled = false;  // any validation succeeded this transaction
    std::vector<ReadEntry> rs;
    std::vector<OwnedEntry> ws;
    CmTxView cm_view;
    std::uint32_t cm_retries = 0;
  };

  [[nodiscard]] const OwnedEntry* find_owned(const Slot& slot, VarId var) const {
    for (const auto& e : slot.ws)
      if (e.var == var) return &e;
    return nullptr;
  }

  /// Θ(|read set|) incremental validation — the Theorem 3 cost. Draws the
  /// validation snapshot (slot.rv on success) before touching any entry
  /// and waits out kCommitting/kCommitted owners, so a pass certifies the
  /// whole read set current at stamp 2·rv+1 (see the header). `expected`
  /// is the state our own status word must still hold when we own
  /// variables (kCommitting during the commit-time validation).
  [[nodiscard]] bool validate(sim::ThreadCtx& ctx, Slot& slot,
                              State expected = kActive);

  /// Serialization stamp (2·rv+1) for an abort record: the last
  /// successful validation, or the abort instant when none succeeded.
  [[nodiscard]] std::uint64_t abort_stamp(sim::ThreadCtx& ctx, Slot& slot);

  /// Release all still-held ownership records (no write-back).
  void release_owned(sim::ThreadCtx& ctx, Slot& slot);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<sim::BaseWord>, sim::kMaxThreads> status_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
  std::unique_ptr<ContentionManager> cm_;
  /// The commit-ticket clock (the orec-stamp story, see the header).
  sim::GlobalClock clock_;
  std::atomic<std::uint64_t> start_stamps_{0};  // CM metadata (advisory only)
};

}  // namespace optm::stm
