// DSTM-style STM (Herlihy, Luchangco, Moir, Scherer — PODC'03), the
// tight witness of the paper's lower bound (§6):
//
//   "The lower bound is tight because DSTM and ASTM are progressive and
//    single-version, ensure opacity and use invisible reads, and have the
//    time complexity of Θ(k) (with most contention managers)."
//
// Design-space coordinates: eager ownership acquisition on write (revocable
// "virtual locks" — ownership can be stolen after aborting the owner via a
// status-word CAS, the obstruction-free pattern), invisible reads, a single
// committed version per variable, and — the defining cost — *incremental
// validation*: every read re-validates the entire read set, Θ(|read set|)
// steps, because with invisible reads nobody else can warn the transaction
// that a concurrent commit overwrote something it read (the information-
// theoretic core of Theorem 3's proof).
//
// Conflict resolution between writers is delegated to a pluggable
// contention manager (contention.hpp).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sim/base_object.hpp"
#include "stm/contention.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class DstmStm final : public RuntimeBase {
 public:
  explicit DstmStm(std::size_t num_vars,
                   std::unique_ptr<ContentionManager> cm = nullptr);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "dstm",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  // Transaction identity: (slot, epoch). The per-slot status word encodes
  // (epoch << 2) | state; the per-variable owner word encodes
  // ((slot + 1) << 32) | (epoch & 0xffffffff). A stale owner word (epoch
  // mismatch or state != Active) denotes a finished transaction whose
  // ownership may be reclaimed; its buffered write never reached `value`.
  enum State : std::uint64_t { kActive = 0, kCommitted = 1, kAborted = 2 };

  [[nodiscard]] static constexpr std::uint64_t status_word(std::uint64_t epoch,
                                                           State s) noexcept {
    return (epoch << 2) | s;
  }
  [[nodiscard]] static constexpr State state_of(std::uint64_t w) noexcept {
    return static_cast<State>(w & 3);
  }
  [[nodiscard]] static constexpr std::uint64_t epoch_of(std::uint64_t w) noexcept {
    return w >> 2;
  }
  [[nodiscard]] static constexpr std::uint64_t owner_word(std::uint32_t slot,
                                                          std::uint64_t epoch) noexcept {
    return (static_cast<std::uint64_t>(slot + 1) << 32) | (epoch & 0xffffffffULL);
  }

  struct VarMeta {
    sim::BaseWord owner;    // 0 = unowned
    sim::BaseWord value;    // latest committed value (single-version)
    sim::BaseWord version;  // bumped at each successful write-back
  };

  struct OwnedEntry {
    VarId var;
    std::uint64_t value;        // buffered new value (process-local)
    std::uint64_t acq_version;  // version at acquisition
  };

  struct Slot {
    bool active = false;
    std::uint64_t epoch = 0;
    std::vector<ReadEntry> rs;
    std::vector<OwnedEntry> ws;
    CmTxView cm_view;
    std::uint32_t cm_retries = 0;
  };

  [[nodiscard]] const OwnedEntry* find_owned(const Slot& slot, VarId var) const {
    for (const auto& e : slot.ws)
      if (e.var == var) return &e;
    return nullptr;
  }

  /// Θ(|read set|) incremental validation — the Theorem 3 cost.
  [[nodiscard]] bool validate(sim::ThreadCtx& ctx, Slot& slot);

  /// Release all still-held ownership records (no write-back).
  void release_owned(sim::ThreadCtx& ctx, Slot& slot);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<sim::BaseWord>, sim::kMaxThreads> status_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
  std::unique_ptr<ContentionManager> cm_;
  std::atomic<std::uint64_t> start_stamps_{0};  // CM metadata (advisory only)
};

}  // namespace optm::stm
