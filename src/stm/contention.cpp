#include "stm/contention.hpp"

#include <stdexcept>
#include <string>

namespace optm::stm {

std::unique_ptr<ContentionManager> make_contention_manager(std::string_view name) {
  if (name == "aggressive") return std::make_unique<AggressiveCm>();
  if (name == "polite") return std::make_unique<PoliteCm>();
  if (name == "timid") return std::make_unique<TimidCm>();
  if (name == "karma") return std::make_unique<KarmaCm>();
  if (name == "greedy") return std::make_unique<GreedyCm>();
  throw std::invalid_argument("unknown contention manager: " + std::string(name));
}

}  // namespace optm::stm
