// EventSink: the consumption side of the drain pipeline.
//
// Recorder::drain() produces stamp-contiguous event batches; what happens
// to them — certify live (MonitorSink), build an in-RAM history
// (HistoryAppendSink), persist to the segmented binary log
// (log::LogWriterSink, src/log/log_sink.hpp), or fan out to several of
// those at once (TeeSink) — is a sink chosen by the caller. DrainPump is
// the one drain loop all of them share: poll, pace (AdaptiveDrainPacer),
// drain, feed the sink, flush the tail when the producers finish. The
// soak driver, the examples and the benchmarks all run this loop rather
// than hand-rolling their own.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <initializer_list>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "core/history.hpp"
#include "core/online.hpp"
#include "core/parallel_stream.hpp"
#include "stm/recorder.hpp"

namespace optm::stm {

/// A consumer of drained event batches. accept() is called from the ONE
/// draining thread with each stamp-contiguous batch, in stamp order.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Consume one batch. The span is only valid for the duration of the
  /// call. Returning false reports a SINK failure (an I/O error, a full
  /// disk) and stops the pump; a certificate violation is NOT a sink
  /// failure — the monitor latches it and the pump keeps feeding, so the
  /// recording stays complete for post-mortems.
  [[nodiscard]] virtual bool accept(std::span<const core::Event> batch) = 0;

  /// End of stream: durably finalize whatever accept() buffered (the log
  /// sink seals its tail segment here). Called once by DrainPump::run()
  /// after the final drain.
  virtual bool finish() { return true; }
};

/// Feeds batches to an OnlineCertificateMonitor. ingest() returning false
/// (violation latched) is deliberately not surfaced as a sink failure —
/// read monitor.ok()/violation() after the run.
class MonitorSink final : public EventSink {
 public:
  explicit MonitorSink(core::OnlineCertificateMonitor& monitor) noexcept
      : monitor_(&monitor) {}
  bool accept(std::span<const core::Event> batch) override {
    (void)monitor_->ingest(batch);
    return true;
  }

 private:
  core::OnlineCertificateMonitor* monitor_;
};

/// Feeds batches to a core::ParallelStreamCertifier — live certification
/// that scales past one monitor core (parallel_stream.hpp). Same contract
/// as MonitorSink: a latched violation is not a sink failure; finish()
/// runs the certifier's final merge barrier so ok()/violation() are
/// definitive after the pump returns.
class ParallelMonitorSink final : public EventSink {
 public:
  explicit ParallelMonitorSink(core::ParallelStreamCertifier& cert) noexcept
      : cert_(&cert) {}
  bool accept(std::span<const core::Event> batch) override {
    (void)cert_->ingest(batch);
    return true;
  }
  bool finish() override {
    (void)cert_->finish();
    return true;
  }

 private:
  core::ParallelStreamCertifier* cert_;
};

/// Appends batches to a core::History (the in-RAM baseline the offline
/// sharded verifier consumes).
class HistoryAppendSink final : public EventSink {
 public:
  explicit HistoryAppendSink(core::History& h) noexcept : h_(&h) {}
  bool accept(std::span<const core::Event> batch) override {
    h_->append_batch(batch);
    return true;
  }

 private:
  core::History* h_;
};

/// Swallows batches. The pure-drain baseline for sink-overhead benchmarks.
class NullSink final : public EventSink {
 public:
  bool accept(std::span<const core::Event> batch) override {
    events_ += batch.size();
    return true;
  }
  [[nodiscard]] std::size_t events() const noexcept { return events_; }

 private:
  std::size_t events_ = 0;
};

/// Fans one batch out to several sinks ("certify live AND append to
/// disk"). Every sink sees every batch even after one fails — a full disk
/// on the log leg must not stop the live monitor from certifying, and a
/// transiently failing sink keeps receiving batches so it can recover.
/// Status is tracked PER SINK: accept() reports the current batch only
/// (true while at least one sink still consumed it, so the pump keeps
/// running through partial failures and stops only when every leg is
/// lost), while the first failure of each sink stays latched and is
/// surfaced through ok()/first_failure() and the finish() conjunction.
class TeeSink final : public EventSink {
 public:
  /// One sink's latched failure record.
  struct SinkStatus {
    bool ok = true;
    /// Batch ordinal (0-based, counting accept() calls) of the first
    /// failed accept, or SIZE_MAX; finish-only failures keep it there.
    std::size_t first_failed_batch = static_cast<std::size_t>(-1);
  };

  TeeSink() = default;
  TeeSink(std::initializer_list<EventSink*> sinks) : sinks_(sinks) {
    status_.resize(sinks_.size());
  }
  TeeSink& add(EventSink* sink) {
    if (sink != nullptr) {
      sinks_.push_back(sink);
      status_.emplace_back();
    }
    return *this;
  }

  bool accept(std::span<const core::Event> batch) override {
    bool any = sinks_.empty();  // no sinks: trivially consumed
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      if (sinks_[i]->accept(batch)) {
        any = true;
      } else if (status_[i].ok) {
        status_[i].ok = false;
        status_[i].first_failed_batch = batches_;
      }
    }
    ++batches_;
    return any;
  }
  bool finish() override {
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      if (!sinks_[i]->finish()) status_[i].ok = false;
    }
    return ok();
  }

  /// True while every sink has accepted every batch (and finish, once
  /// called) cleanly.
  [[nodiscard]] bool ok() const noexcept {
    for (const auto& s : status_) {
      if (!s.ok) return false;
    }
    return true;
  }
  /// Index (in add order) of the first sink that failed, or nullopt.
  [[nodiscard]] std::optional<std::size_t> first_failure() const noexcept {
    std::optional<std::size_t> first;
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < status_.size(); ++i) {
      if (!status_[i].ok && status_[i].first_failed_batch < best) {
        best = status_[i].first_failed_batch;
        first = i;
      }
    }
    // Finish-only failures have no batch ordinal; fall back to add order.
    if (!first) {
      for (std::size_t i = 0; i < status_.size(); ++i) {
        if (!status_[i].ok) return i;
      }
    }
    return first;
  }
  [[nodiscard]] const SinkStatus& status(std::size_t i) const {
    return status_.at(i);
  }
  [[nodiscard]] std::size_t num_sinks() const noexcept { return sinks_.size(); }

 private:
  std::vector<EventSink*> sinks_;
  std::vector<SinkStatus> status_;
  std::size_t batches_ = 0;  // accept() calls seen (failed batches included)
};

/// The shared drain loop: recorder -> pacer -> sink. run() polls until
/// `done` is set by the producers AND the recorder is fully drained, then
/// finish()es the sink. Call from exactly one thread (the verifier /
/// writer thread of the pipeline).
class DrainPump {
 public:
  struct Stats {
    std::size_t batches = 0;  // non-empty drains fed to the sink
    std::size_t events = 0;
    bool sink_ok = true;  // false -> the sink failed and the pump stopped
    /// Events still pending in the recorder when a sink failure aborted
    /// the run (0 on a clean run): the recording the sink chain never saw.
    std::size_t events_undrained = 0;
  };

  DrainPump(Recorder& recorder, EventSink& sink,
            const AdaptiveDrainPacer::Options& pacing = {})
      : recorder_(&recorder), sink_(&sink), pacer_(pacing) {
    batch_.reserve(pacing.max_pending);
  }

  [[nodiscard]] Stats run(const std::atomic<bool>& done) {
    Stats stats;
    // Idle backoff: the pacer is clock-free, so a quiet recorder would
    // otherwise busy-spin this thread at 100% — fatal once a server runs
    // one pump per tenant. A handful of yields keeps the reaction to a
    // fresh burst instant; after that the poll sleeps, doubling up to
    // kMaxSleep (well under the event-count latency bounds, which are
    // pending-based and unaffected by wall-clock pauses between polls).
    constexpr std::uint32_t kSpinPolls = 64;
    constexpr auto kMinSleep = std::chrono::microseconds(50);
    constexpr auto kMaxSleep = std::chrono::microseconds(1000);
    std::uint32_t idle_polls = 0;
    auto sleep = kMinSleep;
    for (;;) {
      const bool finished = done.load(std::memory_order_acquire);
      if (pacer_.should_drain(recorder_->stamps_issued(),
                              recorder_->approx_pending()) ||
          finished) {
        batch_.clear();
        recorder_->drain(batch_);
        pacer_.on_drain();
        idle_polls = 0;
        sleep = kMinSleep;
        if (!batch_.empty()) {
          ++stats.batches;
          stats.events += batch_.size();
          if (!sink_->accept(batch_.span())) {
            stats.sink_ok = false;
            stats.events_undrained = recorder_->approx_pending();
            break;
          }
        }
        // Drained after the producers finished and nothing was pending:
        // the stream is complete (drain() returns the contiguous prefix,
        // which at quiescence is everything).
        if (finished && recorder_->approx_pending() == 0) break;
      } else if (++idle_polls <= kSpinPolls) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(sleep);
        sleep = std::min(sleep * 2, kMaxSleep);
      }
    }
    stats.sink_ok = sink_->finish() && stats.sink_ok;
    return stats;
  }

 private:
  Recorder* recorder_;
  EventSink* sink_;
  AdaptiveDrainPacer pacer_;
  EventBatch batch_;
};

}  // namespace optm::stm
