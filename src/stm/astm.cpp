#include "stm/astm.hpp"

#include "util/spin.hpp"

namespace optm::stm {

AstmStm::AstmStm(std::size_t num_vars, std::unique_ptr<ContentionManager> cm,
                 AcquirePolicy policy)
    : RuntimeBase(num_vars),
      vars_(num_vars),
      cm_(cm != nullptr ? std::move(cm) : std::make_unique<AggressiveCm>()),
      policy_(policy) {
  if (policy_ == AcquirePolicy::kForceEager) {
    for (auto& m : mode_) m->eager = true;
  }
  // Reads are stamped with their (validation snapshot, orec version) pair
  // and commits ticket through kCommitting (the orec-stamp story,
  // dstm.hpp) — the preconditions for dropping the recorder windows.
  window_free_supported_ = true;
}

void AstmStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.eager = mode_[ctx.id()]->eager;
  ++slot.epoch;
  slot.rv = 0;
  slot.rv_sampled = false;
  slot.rs.clear();
  slot.pending.clear();
  slot.owned.clear();
  slot.met_rival = false;
  slot.cm_view.start_stamp = start_stamps_.fetch_add(1) + 1;
  slot.cm_view.ops_executed = 0;
  slot.cm_view.retries = slot.cm_retries;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kActive));
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool AstmStm::validate(sim::ThreadCtx& ctx, Slot& slot, State expected) {
  const std::uint64_t before = ctx.steps.total();
  // Snapshot first, entries after: every overwriter of an entry that
  // passes below enters kCommitting — and so draws its ticket — after the
  // entry's check, hence after this read (the orec-stamp story).
  const std::uint64_t rv = clock_.read(ctx);
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  bool ok = true;
  for (const ReadEntry& r : slot.rs) {
    VarMeta& meta = *vars_[r.var];
    // Wait out rival owners past the stamp authority (kCommitting) or
    // commit point (kCommitted, write-back in flight): commit bumps the
    // version and fails the equality check, abort leaves it untouched.
    // Bounded, then conservatively fail — two kCommitting transactions
    // can each read a variable the other owns, and an unbounded wait
    // would deadlock that cycle (see DstmStm::validate).
    util::Backoff backoff;
    bool blocked = false;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint64_t own = meta.owner.load(ctx);
      if (own == 0 || own == me) break;
      const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
      const std::uint64_t e = own & 0xffffffffULL;
      const std::uint64_t st = status_[s]->load(ctx);
      if (epoch_of(st) != e ||
          (state_of(st) != kCommitting && state_of(st) != kCommitted)) {
        break;
      }
      if (attempt >= 64) {
        blocked = true;
        break;
      }
      backoff.pause();
    }
    if (blocked || meta.version.load(ctx) != r.version) {
      ok = false;
      break;
    }
  }
  // Ownership is revocable: once any variable is acquired, a rival may have
  // aborted us through our status word (only while it read kActive).
  if (ok && !slot.owned.empty()) {
    ok = status_[ctx.id()]->load(ctx) == status_word(slot.epoch, expected);
  }
  if (ok) {
    slot.rv = rv;
    slot.rv_sampled = true;
  }
  ctx.stats.validation_steps += ctx.steps.total() - before;
  return ok;
}

std::uint64_t AstmStm::abort_stamp(sim::ThreadCtx& ctx, Slot& slot) {
  // Last successful validation, or the abort instant when none ever
  // succeeded (no read claims to honor) — see DstmStm::abort_stamp.
  if (!slot.rv_sampled) slot.rv = clock_.read(ctx);
  return 2 * slot.rv + 1;
}

void AstmStm::release_owned(sim::ThreadCtx& ctx, Slot& slot) {
  for (const OwnedEntry& e : slot.owned) {
    std::uint64_t expect = owner_word(ctx.id(), slot.epoch);
    (void)vars_[e.var]->owner.cas(ctx, expect, 0);  // may have been stolen
  }
  slot.owned.clear();
}

void AstmStm::adapt(std::uint32_t process, const Slot& slot, bool committed,
                    bool late_abort) {
  if (policy_ != AcquirePolicy::kAdaptive) return;
  Mode& m = *mode_[process];
  if (!slot.eager) {
    // Lazy: punish commit-time aborts (conflicts discovered only after the
    // whole transaction ran); any other outcome resets the streak.
    if (late_abort) {
      if (++m.lazy_losses >= kLazyLossesToEager) {
        m.eager = true;
        m.lazy_losses = 0;
        m.eager_clean = 0;
        ++m.switches;
      }
    } else {
      m.lazy_losses = 0;
    }
    return;
  }
  // Eager: a long streak of commits that never met a rival means the
  // up-front acquisition pessimism buys nothing — go back to lazy.
  if (committed && !slot.met_rival) {
    if (++m.eager_clean >= kEagerCleanToLazy) {
      m.eager = false;
      m.eager_clean = 0;
      m.lazy_losses = 0;
      ++m.switches;
    }
  } else {
    m.eager_clean = 0;
  }
}

bool AstmStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++slot.cm_retries;
  ++ctx.stats.aborts;
  adapt(ctx.id(), slot, /*committed=*/false, /*late_abort=*/false);
  rec_abort_mid_op(ctx, abort_stamp(ctx, slot));
  return false;
}

bool AstmStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.pending.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();

  // Sample a stable (value, version) pair of the latest committed state —
  // the same seqlock discipline as DSTM (versions advance by 2 per commit,
  // odd marks a write-back in flight).
  std::uint64_t ver = 0;
  std::uint64_t val = 0;
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t own = meta.owner.load(ctx);
    if (own != 0) {
      const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
      const std::uint64_t e = own & 0xffffffffULL;
      const std::uint64_t st = status_[s]->load(ctx);
      if (epoch_of(st) == e && state_of(st) == kCommitted) {
        backoff.pause();  // write-back in flight: wait it out
        continue;
      }
      // Active/aborted/stale owner: the committed state is still valid —
      // an invisible read of the pre-owner value.
    }
    ver = meta.version.load(ctx);
    val = meta.value.load(ctx);
    if ((ver & 1) == 0 && meta.version.load(ctx) == ver) break;  // stable
    backoff.pause();
  }

  slot.rs.push_back({var, ver});

  // Incremental validation (the Θ(k) step of Theorem 3) — identical in
  // both acquisition modes, which is the point the bench demonstrates.
  if (!validate(ctx, slot)) return fail_op(ctx);

  out = val;
  // The orec-version read-stamp pair (see dstm.hpp): the sampled version
  // word is the writer's 2·wv ticket, just proven current at the
  // validation snapshot.
  rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.rv + 1, ver / 2);
  return true;
}

bool AstmStm::acquire(sim::ThreadCtx& ctx, Slot& slot, VarId var) {
  VarMeta& meta = *vars_[var];
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  util::Backoff backoff;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint64_t own = meta.owner.load(ctx);
    if (own == 0) {
      if (meta.owner.cas(ctx, own, me)) break;  // acquired
      continue;
    }
    if (own == me) break;  // already ours (re-acquisition at commit)
    const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
    const std::uint64_t e = own & 0xffffffffULL;
    const std::uint64_t st = status_[s]->load(ctx);
    if (epoch_of(st) != e || state_of(st) == kAborted) {
      // Stale or aborted owner: steal the ownership record.
      if (meta.owner.cas(ctx, own, me)) break;
      continue;
    }
    if (state_of(st) == kCommitted || state_of(st) == kCommitting) {
      // Past the stamp authority: not killable, resolves shortly.
      backoff.pause();
      continue;
    }
    // Live conflict: ask the contention manager.
    slot.met_rival = true;
    switch (cm_->resolve(slot.cm_view, slots_[s]->cm_view, attempt)) {
      case CmDecision::kAbortOther: {
        std::uint64_t expect = status_word(e, kActive);
        (void)status_[s]->cas(ctx, expect, status_word(e, kAborted));
        continue;  // re-examine (either aborted now, or it just finished)
      }
      case CmDecision::kAbortSelf:
        return false;
      case CmDecision::kWait:
        backoff.pause();
        continue;
    }
  }
  slot.owned.push_back({var, meta.version.load(ctx)});
  return true;
}

bool AstmStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  const bool known = slot.pending.find(var) != nullptr;
  slot.pending.upsert(var, value);

  if (slot.eager && !known) {
    // Eager acquire: claim the ownership record at the write itself.
    if (!acquire(ctx, slot, var)) return fail_op(ctx);
  }
  // Lazy acquire: the write costs zero shared-memory steps; all conflicts
  // surface in one batch at commit.

  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool AstmStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  const RecWindow window = rec_commit_window(ctx);

  auto fail = [&]() {
    status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
    release_owned(ctx, slot);
    slot.active = false;
    ++slot.cm_retries;
    ++ctx.stats.aborts;
    adapt(ctx.id(), slot, /*committed=*/false, /*late_abort=*/true);
    rec_abort_at_commit(ctx, abort_stamp(ctx, slot));
    return false;
  };

  // Lazy mode: batch-acquire the write set now (eager mode already owns
  // everything; acquire() tolerates re-acquisition). Acquisition runs
  // while still kActive — rivals duel and may kill us throughout, exactly
  // as they can against an eager acquirer.
  if (!slot.eager) {
    for (const WriteEntry& e : slot.pending.entries()) {
      if (!acquire(ctx, slot, e.var)) return fail();
    }
  }

  if (slot.pending.empty()) {
    // Read-only: the commit-time validation is the serialization point.
    if (!validate(ctx, slot)) return fail();
    std::uint64_t expect = status_word(slot.epoch, kActive);
    if (!status_[ctx.id()]->cas(ctx, expect,
                                status_word(slot.epoch, kCommitted))) {
      return fail();
    }
    slot.active = false;
    slot.cm_retries = 0;
    ++ctx.stats.commits;
    adapt(ctx.id(), slot, /*committed=*/true, /*late_abort=*/false);
    rec_commit(ctx, 2 * slot.rv + 1);  // serialize at the snapshot
    return true;
  }

  // Stamp authority (the orec-stamp story, dstm.hpp): kCommitting is
  // published through every owned orec before the ticket is drawn, and
  // rivals can no longer abort us past this CAS.
  std::uint64_t expect = status_word(slot.epoch, kActive);
  if (!status_[ctx.id()]->cas(ctx, expect,
                              status_word(slot.epoch, kCommitting))) {
    return fail();
  }
  const std::uint64_t wv = clock_.advance(ctx);
  if (!validate(ctx, slot, kCommitting)) return fail();

  // Commit point: only we can touch the status word past kCommitting.
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kCommitted));
  rec_commit(ctx, 2 * wv);

  // Write back and release ownership (odd version while in flight); the
  // final version word is the global ticket 2·wv.
  for (const OwnedEntry& e : slot.owned) {
    VarMeta& meta = *vars_[e.var];
    const WriteEntry* w = slot.pending.find(e.var);
    meta.version.store(ctx, e.acq_version + 1);
    meta.value.store(ctx, w->value);
    meta.version.store(ctx, 2 * wv);
    meta.owner.store(ctx, 0);
  }
  slot.owned.clear();
  slot.active = false;
  slot.cm_retries = 0;
  ++ctx.stats.commits;
  adapt(ctx.id(), slot, /*committed=*/true, /*late_abort=*/false);
  return true;
}

void AstmStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  adapt(ctx.id(), slot, /*committed=*/false, /*late_abort=*/false);
  rec_voluntary_abort(ctx, abort_stamp(ctx, slot));
}

}  // namespace optm::stm
