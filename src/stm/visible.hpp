// Visible-read STM (RSTM/SXM family), the counterpoint to Theorem 3:
//
//   "TM implementations that use visible reads, e.g., SXM and RSTM ...
//    can have a constant complexity."
//
// Readers announce themselves in a per-variable reader bitmap (one RMW on
// the read path — the §6 cost: a shared-memory write that invalidates
// other processors' cache lines). Writers eagerly abort every visible
// reader at acquisition time, so a still-active transaction KNOWS its read
// set is intact: per-operation validation is a single status check, O(1)
// regardless of k. Progressive, single-version, opaque — it escapes the
// Ω(k) bound precisely by giving up invisibility.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "sim/base_object.hpp"
#include "stm/contention.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class VisibleReadStm final : public RuntimeBase {
 public:
  explicit VisibleReadStm(std::size_t num_vars,
                          std::unique_ptr<ContentionManager> cm = nullptr);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "visible",
            .invisible_reads = false,
            .single_version = true,
            .progressive = true,
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  enum State : std::uint64_t { kActive = 0, kCommitted = 1, kAborted = 2 };
  [[nodiscard]] static constexpr std::uint64_t status_word(std::uint64_t epoch,
                                                           State s) noexcept {
    return (epoch << 2) | s;
  }
  [[nodiscard]] static constexpr State state_of(std::uint64_t w) noexcept {
    return static_cast<State>(w & 3);
  }
  [[nodiscard]] static constexpr std::uint64_t epoch_of(std::uint64_t w) noexcept {
    return w >> 2;
  }
  [[nodiscard]] static constexpr std::uint64_t owner_word(std::uint32_t slot,
                                                          std::uint64_t epoch) noexcept {
    return (static_cast<std::uint64_t>(slot + 1) << 32) | (epoch & 0xffffffffULL);
  }

  struct VarMeta {
    sim::BaseWord owner;    // 0 = unowned
    sim::BaseWord value;    // latest committed value
    sim::BaseWord readers;  // bitmap: bit s = process s is reading
  };

  struct OwnedEntry {
    VarId var;
    std::uint64_t value;
  };

  struct Slot {
    bool active = false;
    std::uint64_t epoch = 0;
    std::vector<VarId> rs;  // for reader-bit cleanup
    std::vector<OwnedEntry> ws;
    CmTxView cm_view;
    std::uint32_t cm_retries = 0;
  };

  [[nodiscard]] bool still_active(sim::ThreadCtx& ctx, const Slot& slot) {
    const std::uint64_t before = ctx.steps.total();
    const bool ok =
        status_[ctx.id()]->load(ctx) == status_word(slot.epoch, kActive);
    ctx.stats.validation_steps += ctx.steps.total() - before;
    return ok;
  }

  void clear_read_bits(sim::ThreadCtx& ctx, Slot& slot);
  void release_owned(sim::ThreadCtx& ctx, Slot& slot);
  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<sim::BaseWord>, sim::kMaxThreads> status_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
  std::unique_ptr<ContentionManager> cm_;
  std::atomic<std::uint64_t> start_stamps_{0};
};

}  // namespace optm::stm
