// Concurrent history recorders: turn live STM executions into
// core::History values that the checkers can judge.
//
// Every recorded event is stamped with a ticket from one atomic global
// sequence counter at the moment it semantically occurs (invocations before
// the shared-memory work of the operation, responses after the value is
// fixed, C at the commit point), so the stamp order is a legal linearization
// of the actual event order. Commit order is captured separately — it is
// the total order ≪ the certificate checker (Theorem 2) verifies against.
//
// Soundness of the certificate requires more than per-event atomicity: the
// *value sampling* of a read must be atomic with the recording of its
// response, and the *commit point* atomic with the recording of C —
// otherwise a descheduled thread records its event after a conflicting
// commit slipped in between, and the recorded ≪ is no longer a valid
// serialization even though the execution was correct. Runtimes therefore
// wrap those two short sections in a window when a recorder is attached
// (RuntimeBase::RecWindow). Two window kinds exist:
//
//   * kSample — value sampling of a read, or the C record of a read-only
//     transaction (which publishes nothing). Sampling windows may overlap
//     each other: two concurrent samples cannot invalidate each other's
//     recorded order, only a conflicting commit can.
//   * kCommit — the commit point of an update transaction (or any window
//     that mutates committed register state, e.g. eager in-place writes
//     and their rollback). Exclusive against every other window.
//
// This reader/writer discipline preserves the Theorem-2 argument — no
// commit point can slip between a value sample and its record — while
// letting read-heavy recorded runs scale with cores. Recording mode still
// serializes commit points against sampling; it changes timing, never
// algorithm logic, and is intended for verification runs; benchmarks run
// unrecorded.
//
// WINDOW-FREE (stamped) recording drops even that discipline: a runtime
// that can justify every non-local read by a stamp interval
// (Stm::set_window_free) takes NO window at all and instead stamps the
// read response with its (rv, version) pair (Event::stamp = 2·rv+1,
// Event::ver). Two stamp sources exist, landing in one stamp space:
//
//   * CLOCK runtimes (tl2, tiny, norec): rv is the global version clock
//     the read was O(1)-validated against, ver the lock word's version
//     (kNoReadVersion for NOrec's value validation). MvStm is the
//     multi-version variant: rv is the begin-time snapshot, ver the ring
//     slot's writer ticket, and update commits draw their 2·wv ticket
//     after locking and before validating so the commit window can go
//     too.
//   * OREC runtimes (dstm, astm): no per-read clock check exists, so the
//     CAS-acquired ownership record is the stamp authority instead — a
//     committer publishes kCommitting through its status word (which
//     every owned orec points at) BEFORE drawing its clock ticket, and
//     write-backs store the 2·wv ticket as the orec version word; a
//     validation draws rv before examining any entry and waits out
//     kCommitting/kCommitted owners, making each passing read-set
//     simultaneously current at 2·rv+1. Reads stamp (2·rv+1, word/2).
//     Stolen orecs cannot poison the stamps: stealing requires the
//     victim's status to read kAborted, so the victim's C never records
//     and its buffered writes never become a version — see online.hpp.
//
// The recorder's job shrinks to assigning each push a globally ordered
// stamp; the Theorem-2 argument moves onto the stamps the runtime emits,
// checked by the kStampedRead version-order policy
// (core/version_order.hpp; the soundness argument is in core/online.hpp).
// Records may then drift — a read response can land after the C of a
// commit that overwrote the version it read, and C records of concurrent
// commits can land out of wv order — but reads-from is never inverted (a
// committer records C before write-back; a reader samples only after
// write-back), which is all the stamp checks need. Both engines below
// carry the read stamps through history()/drain() untouched; the
// cross-runtime conformance suite differentially tests window-free
// against windowed recordings of identical schedules.
//
// BATCH STAMPING (Recorder::Options::stamp_batch = N > 1) amortizes the
// remaining per-event cost — one relaxed fetch_add on the global counter —
// by drawing ONE ticket per batch of up to N same-lane events and giving
// every event of the batch the same recorder stamp. What keeps this sound
// is a seqlock-style validation against the global counter itself: a lane
// may extend its open batch (reuse ticket T) only while the counter still
// reads T+1, i.e. NOBODY — no other lane, no commit record, nothing — has
// drawn a ticket since the batch opened. The moment any other event
// anywhere draws a ticket, the extension check fails and the lane cuts a
// fresh batch. Consequences, in order of importance:
//
//   * What coarsens: only runs of same-lane events with NO intervening
//     ticket draw anywhere share a stamp. Those events were already
//     adjacent in every admissible merge order, so collapsing their stamps
//     loses nothing: the drained stream is byte-identical to per-event
//     stamping on any schedule (deterministic or concurrent) — the merge
//     emits a batch's events in lane push order, which is exactly the
//     order per-event tickets would have recorded.
//   * What cannot coarsen: serialization points. A commit or abort record
//     closes the lane's open batch and always draws its own private
//     ticket ("serial at birth"), so no batch ever spans a C/A record of
//     its own lane — and the seqlock bars it from spanning any OTHER
//     lane's C/A draw. A reader that observed a committer's write-back
//     observes the committer's ticket draw too (the draw is
//     sequenced-before write-back; RMWs on one atomic are totally
//     ordered), so its next extension check fails and the read records
//     under a fresh ticket AFTER the commit record. Theorem-2-on-stamps
//     (kStampedRead, core/online.hpp) is untouched for the deeper reason
//     that it never reads recorder stamps at all: it judges the
//     Event::stamp intervals the RUNTIME emits, which batching does not
//     touch. The recorder stamp only orders the drained stream, and that
//     order is unchanged (see above).
//   * Windows: RuntimeBase::rec_commit_window flushes the recording
//     thread's open batch before taking the exclusive window, so a batch
//     never spans a commit-window transition. Sample windows do not flush
//     (they may overlap each other by design; flushing there would undo
//     the batching) — the exclusive window's mutual exclusion plus the
//     seqlock already order samples against commit points.
//   * Accounting stays in EVENT units so AdaptiveDrainPacer's EWMA keeps
//     converging on the same inputs: stamps_issued() reports events whose
//     batch has closed (events_issued_, bumped once per batch — the
//     amortization), approx_pending() derives from published-event counts,
//     and tickets_issued() exposes the raw counter for tests asserting the
//     amortization itself. stamps_issued() lags open batches by at most
//     lanes·(N−1) events; the pacer's idle-poll flush bounds the latency
//     tail exactly as before.
//   * drain() may emit the published prefix of a still-open batch without
//     advancing past its ticket (the rest of the batch completes the same
//     stamp later) — sound because a batch's events are contiguous at its
//     ticket, and it keeps approx_pending() able to reach 0 at quiescence
//     even if a lane parks an open batch forever.
//
// N = 1 (the default) bypasses all of it and is byte-for-byte today's
// per-event path: same instructions on the hot path, same counters, same
// drained bytes.
//
// Two implementations:
//   * Recorder      — the sharded engine: per-lane (per-process) buffers,
//     lock-free against each other, merged on demand by stamp order. The
//     default; scales with recording threads.
//   * MutexRecorder — the original single-mutex engine, kept as the
//     baseline for benchmarking and as a differential-testing oracle.
//
// DRAIN SIDE (the live-verification feed). drain() merges each lane's
// published prefix directly out of the lanes' stable chunks into a
// caller-owned, reusable EventBatch — no intermediate per-lane copy, no
// per-drain allocation: the drain cursors cache the chunk pointers (chunks
// never move once allocated, so the per-lane spinlock is taken only when a
// lane has GROWN since the last drain), the k-way merge heap is a reused
// member, and the batch keeps its high-water capacity across drains. A
// consumer therefore pays exactly one copy per event, recorder chunk ->
// batch, for the lifetime of the pipeline.
//
// CONSUMPTION is decoupled from draining by stm::EventSink (sink.hpp):
// the DrainPump loop owns the pacing and the reusable batch, and hands
// each stamp-contiguous batch to an interchangeable sink — certify live
// (MonitorSink), buffer in RAM (HistoryAppendSink), append to the
// durable segment log (log::LogWriterSink), or fan out (TeeSink). New
// consumers implement the sink interface instead of re-rolling this
// drain loop.
//
// PACING. A live consumer should neither busy-poll a quiet recorder nor
// let a burst build unbounded verdict latency. AdaptiveDrainPacer derives
// the poll threshold from the measured ingest rate (an EWMA of stamps
// issued between polls): bursts raise the threshold toward max_interval so
// batches amortize the merge, quiet periods drop it toward min_interval
// and an idle-poll flush bounds the tail — so the events between a
// violation being recorded and the monitor latching it stay under
// Options::max_pending whatever the workload does (the cadence tests
// enforce both the convergence and the latency bound).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/history.hpp"
#include "sim/thread_ctx.hpp"
#include "stm/api.hpp"
#include "util/spin.hpp"

namespace optm::stm {

namespace detail {

/// The certificate ≪: every recorded transaction ordered by its
/// serialization point, the key (stamp, seq) where
///   * committed:     (commit stamp, position of its C event) — for
///     stamp-0 runtimes that is plain commit-record order;
///   * non-committed: (abort stamp,  position of its LAST NON-LOCAL READ
///     RESPONSE) — the last moment the runtime vouched for its whole
///     read set (read responses re-validate in the stamp-0 runtimes;
///     WRITE responses do not, so they must not advance the anchor). A
///     transaction with no such reads anchors at its first event.
/// A LOCAL read (preceded by the transaction's own write to the same
/// register) is answered from the write buffer without validation, so
/// it must not advance the anchor either. Unlike the naive "committed
/// first, aborted appended" order, this respects the real-time order of
/// ALL transactions, which Theorem 2's well-formedness check requires
/// (an aborted transaction that completed before a later one began must
/// precede it in ≪).
[[nodiscard]] inline std::vector<core::TxId> certificate_order_of(
    const std::vector<core::Event>& events,
    const std::unordered_map<core::TxId, std::uint64_t>& stamps) {
  struct Key {
    std::uint64_t stamp = 0;
    std::size_t seq = 0;
    bool committed = false;
    bool seen = false;
  };
  std::unordered_map<core::TxId, Key> keys;
  std::set<std::pair<core::TxId, VarId>> wrote;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const core::Event& e = events[i];
    Key& k = keys[e.tx];
    if (!k.seen) {
      k.seen = true;
      k.seq = i;  // first-event fallback
    }
    if (e.kind == core::EventKind::kInvoke && e.op == core::OpCode::kWrite) {
      wrote.insert({e.tx, static_cast<VarId>(e.obj)});
    } else if (e.kind == core::EventKind::kResponse &&
               e.op == core::OpCode::kRead && !k.committed &&
               !wrote.count({e.tx, static_cast<VarId>(e.obj)})) {
      k.seq = i;
    } else if (e.kind == core::EventKind::kCommit) {
      k.committed = true;
      k.seq = i;
    }
  }
  for (auto& [tx, k] : keys) {
    const auto s = stamps.find(tx);
    if (s != stamps.end()) k.stamp = s->second;
  }

  std::vector<core::TxId> order;
  order.reserve(keys.size());
  for (const auto& [tx, k] : keys) order.push_back(tx);
  std::sort(order.begin(), order.end(), [&](core::TxId a, core::TxId b) {
    const Key& ka = keys.at(a);
    const Key& kb = keys.at(b);
    if (ka.stamp != kb.stamp) return ka.stamp < kb.stamp;
    return ka.seq < kb.seq;
  });
  return order;
}

}  // namespace detail

/// Caller-owned, reusable drain buffer: a thin wrapper over a contiguous
/// event array whose capacity survives clear(), so a steady-state
/// drain/ingest loop allocates nothing. Recorder::drain APPENDS to it;
/// consumers clear() between drains and hand span() to
/// OnlineCertificateMonitor::ingest.
class EventBatch {
 public:
  void clear() noexcept { events_.clear(); }
  void reserve(std::size_t n) { events_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return events_.capacity();
  }
  [[nodiscard]] const core::Event& operator[](std::size_t i) const noexcept {
    return events_[i];
  }
  [[nodiscard]] std::span<const core::Event> span() const noexcept {
    return events_;
  }
  [[nodiscard]] auto begin() const noexcept { return events_.begin(); }
  [[nodiscard]] auto end() const noexcept { return events_.end(); }
  void push_back(const core::Event& e) { events_.push_back(e); }

 private:
  std::vector<core::Event> events_;
};

/// Self-pacing policy for a live drain loop (see the file header). All
/// units are EVENTS (recorder stamps), so behavior is deterministic and
/// directly testable: no wall clock enters the decision.
class AdaptiveDrainPacer {
 public:
  struct Options {
    /// Poll-threshold floor/ceiling, in pending events.
    std::uint64_t min_interval = 64;
    std::uint64_t max_interval = 8192;
    /// Hard verdict-latency bound: a drain is forced once this many events
    /// are pending, whatever the rate estimate says.
    std::uint64_t max_pending = 16384;
    /// Consecutive polls with pending work but NO new ingest before a
    /// flush (bounds latency when the lanes go quiet mid-batch).
    std::uint32_t idle_polls = 4;
    /// The threshold targets this many polls' worth of ingest per drain.
    std::uint32_t target_polls = 4;
    /// EWMA smoothing for the per-poll ingest rate.
    double alpha = 0.25;
  };

  AdaptiveDrainPacer() noexcept : AdaptiveDrainPacer(Options()) {}
  explicit AdaptiveDrainPacer(const Options& options) noexcept
      : options_(options), interval_(clamp(options.min_interval)) {}

  /// One poll: `issued` = Recorder::stamps_issued(), `pending` =
  /// Recorder::approx_pending(). True -> the caller should drain now.
  [[nodiscard]] bool should_drain(std::uint64_t issued,
                                  std::uint64_t pending) noexcept {
    // stamps_issued() is monotone; guard anyway so a swapped-in counter
    // cannot underflow the rate estimate.
    const std::uint64_t delta = issued >= last_issued_ ? issued - last_issued_ : 0;
    last_issued_ = issued;
    if (delta > 0) {
      rate_ = rate_ <= 0.0 ? static_cast<double>(delta)
                           : options_.alpha * static_cast<double>(delta) +
                                 (1.0 - options_.alpha) * rate_;
      interval_ = clamp(static_cast<std::uint64_t>(
          rate_ * static_cast<double>(options_.target_polls)));
      idle_ = 0;
    }
    if (pending == 0) {
      idle_ = 0;
      return false;
    }
    if (pending >= interval_ || pending >= options_.max_pending) return true;
    if (delta == 0 && ++idle_ >= options_.idle_polls) return true;
    return false;
  }

  /// Report a completed drain (resets the idle-flush counter; the rate
  /// estimate feeds purely off stamps_issued deltas, so the batch size
  /// itself is not a parameter).
  void on_drain() noexcept { idle_ = 0; }

  /// Current poll threshold, in pending events (what converges).
  [[nodiscard]] std::uint64_t interval() const noexcept { return interval_; }

 private:
  [[nodiscard]] std::uint64_t clamp(std::uint64_t x) const noexcept {
    const std::uint64_t hi =
        std::min(options_.max_interval, options_.max_pending);
    return std::max(options_.min_interval, std::min(x, hi));
  }

  Options options_;
  double rate_ = 0.0;
  std::uint64_t interval_;
  std::uint64_t last_issued_ = 0;
  std::uint32_t idle_ = 0;
};

/// Abstract recorder interface the runtimes talk to. `lane` is the
/// recording process's slot (ctx.id()), < sim::kMaxThreads; it selects the
/// per-process buffer in the sharded engine and is ignored by the mutex
/// engine.
class RecorderBase {
 public:
  enum class WindowKind : std::uint8_t {
    kSample,  // value sampling / read-only C — may share
    kCommit,  // update commit point / in-place mutation — exclusive
  };

  virtual ~RecorderBase() = default;

  /// Allocate a fresh transaction id (starts at 1; 0 is the §5.4
  /// initializer).
  [[nodiscard]] virtual core::TxId begin_tx() = 0;

  virtual void on_inv(std::uint32_t lane, core::TxId tx, VarId var,
                      core::OpCode op, core::Value arg) = 0;
  /// `stamp`/`ver` are a stamped read's (2·rv+1, version) pair — see
  /// Event::stamp and Event::ver; 0/0 means unstamped.
  virtual void on_ret(std::uint32_t lane, core::TxId tx, VarId var,
                      core::OpCode op, core::Value arg, core::Value ret,
                      std::uint64_t stamp = 0, std::uint64_t ver = 0) = 0;
  virtual void on_try_commit(std::uint32_t lane, core::TxId tx) = 0;
  /// `stamp` is the transaction's serialization stamp within the run. For
  /// runtimes that re-validate the whole read set at the commit point
  /// (DSTM, visible-read, 2PL) the commit record order IS the
  /// serialization order — they pass stamp = 0 and certificate_order()
  /// falls back to record order. Clock-based runtimes serialize read-only
  /// transactions at their snapshot time (TL2's rv, MV's ub), which may lie
  /// before already-recorded commits; they pass composite stamps (2·wv for
  /// updates, 2·rv+1 for read-only) so certificate_order() can interleave
  /// them correctly.
  virtual void on_commit(std::uint32_t lane, core::TxId tx,
                         std::uint64_t stamp = 0) = 0;
  virtual void on_try_abort(std::uint32_t lane, core::TxId tx) = 0;
  /// `stamp` is the serialization point of the ABORTED transaction — the
  /// moment its (validated) reads were simultaneously current. Clock-based
  /// runtimes pass 2·rv+1 (the snapshot they read from); record-order
  /// runtimes pass 0 and certificate_order() anchors the transaction at
  /// its last response (its last successful whole-read-set validation).
  virtual void on_abort(std::uint32_t lane, core::TxId tx,
                        std::uint64_t stamp = 0) = 0;

  virtual void window_enter(WindowKind kind) = 0;
  virtual void window_exit(WindowKind kind) = 0;

  /// The reader/writer lock behind the windows, when the engine implements
  /// them with one (the sharded Recorder): RuntimeBase caches it so a
  /// window is two inlined RMWs instead of two virtual calls wrapping
  /// them. nullptr (the default) -> the virtual window_enter/window_exit
  /// path (the mutex engine's recursive mutex).
  [[nodiscard]] virtual util::SharedSpinLock* window_lock() noexcept {
    return nullptr;
  }

  /// Snapshot of the recorded history. Exact in quiescence (no recording
  /// hook concurrently in flight); during a run it returns the published
  /// prefix-with-gaps and is intended for monitoring only.
  [[nodiscard]] virtual core::History history() const = 0;
  [[nodiscard]] virtual std::vector<core::TxId> certificate_order() const = 0;
  [[nodiscard]] virtual std::size_t num_events() const = 0;

  /// Critical section making a shared-memory action atomic with the
  /// recording of its event (see file header for the kind discipline).
  class [[nodiscard]] Window {
   public:
    Window() = default;
    Window(RecorderBase* recorder, WindowKind kind)
        : recorder_(recorder), kind_(kind) {
      if (recorder_ != nullptr) recorder_->window_enter(kind_);
    }
    Window(Window&& other) noexcept
        : recorder_(other.recorder_), kind_(other.kind_) {
      other.recorder_ = nullptr;
    }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;
    Window& operator=(Window&&) = delete;
    ~Window() {
      if (recorder_ != nullptr) recorder_->window_exit(kind_);
    }

   private:
    RecorderBase* recorder_ = nullptr;
    WindowKind kind_ = WindowKind::kSample;
  };
};

/// The sharded recording engine (the default `Recorder`).
///
/// Each lane is a single-writer chunked buffer: the owning process stamps
/// the event from one atomic sequence counter, stores it into the current
/// chunk, and publishes it with a release store of the lane's count — the
/// hot path is one fetch_add and two plain stores, no lock. (The lane's
/// spinlock guards only chunk-list growth, once per 4096 events, and
/// reader snapshots.) A merge by stamp reconstructs the legal
/// linearization. The stamps of published events are globally contiguous
/// except for events still in flight on other lanes; drain() (the epoch
/// merge) therefore consumes exactly the longest stamp-contiguous prefix,
/// which is a complete, stable prefix of the linearization even while
/// recording continues — the feed for live batch verification.
class Recorder final : public RecorderBase {
 public:
  struct Options {
    /// Events per global-clock ticket (the batch-stamp grain; see the
    /// file-header BATCH STAMPING section). 1 = per-event stamping,
    /// byte-for-byte today's behavior. Values are clamped to >= 1.
    std::uint32_t stamp_batch = 1;
  };

  explicit Recorder(std::size_t num_vars) : Recorder(num_vars, Options()) {}
  Recorder(std::size_t num_vars, Options options)
      : model_(core::ObjectModel::registers(num_vars, 0)),
        batch_n_(options.stamp_batch < 1 ? 1 : options.stamp_batch) {}

  [[nodiscard]] core::TxId begin_tx() override {
    return next_tx_.fetch_add(1, std::memory_order_relaxed);
  }

  void on_inv(std::uint32_t lane, core::TxId tx, VarId var, core::OpCode op,
              core::Value arg) override {
    push(lane, core::ev::inv(tx, var, op, arg));
  }
  void on_ret(std::uint32_t lane, core::TxId tx, VarId var, core::OpCode op,
              core::Value arg, core::Value ret, std::uint64_t stamp = 0,
              std::uint64_t ver = 0) override {
    push(lane, core::ev::ret(tx, var, op, arg, ret, stamp, ver));
  }
  void on_try_commit(std::uint32_t lane, core::TxId tx) override {
    push(lane, core::ev::try_commit(tx));
  }
  void on_commit(std::uint32_t lane, core::TxId tx,
                 std::uint64_t stamp = 0) override {
    // The stamp rides on the C event itself (Event::stamp) so offline
    // consumers (the SnapshotRank version-order policy) see it without the
    // side table; the side table stays for certificate_order().
    push(lane, core::ev::commit(tx, stamp), tx, stamp);
  }
  void on_try_abort(std::uint32_t lane, core::TxId tx) override {
    push(lane, core::ev::try_abort(tx));
  }
  void on_abort(std::uint32_t lane, core::TxId tx,
                std::uint64_t stamp = 0) override {
    push(lane, core::ev::abort(tx, stamp), tx, stamp);
  }

  void window_enter(WindowKind kind) override {
    if (kind == WindowKind::kCommit) {
      window_lock_.lock();
    } else {
      window_lock_.lock_shared();
    }
  }
  void window_exit(WindowKind kind) override {
    if (kind == WindowKind::kCommit) {
      window_lock_.unlock();
    } else {
      window_lock_.unlock_shared();
    }
  }
  [[nodiscard]] util::SharedSpinLock* window_lock() noexcept override {
    return &window_lock_;
  }

  [[nodiscard]] core::History history() const override {
    std::vector<StampedEvent> all = collect();
    core::History h(model_);
    for (const StampedEvent& s : all) h.append(s.event);
    return h;
  }

  [[nodiscard]] std::vector<core::TxId> certificate_order() const override {
    std::vector<StampedEvent> all = collect();
    std::vector<core::Event> events;
    events.reserve(all.size());
    for (const StampedEvent& s : all) events.push_back(s.event);
    std::unordered_map<core::TxId, std::uint64_t> stamps;
    for (const Lane& lane : lanes_) {
      const std::lock_guard<util::SpinLock> guard(lane.mu);
      for (const auto& [tx, stamp] : lane.stamps) stamps[tx] = stamp;
    }
    return detail::certificate_order_of(events, stamps);
  }

  [[nodiscard]] std::size_t num_events() const override {
    std::size_t n = 0;
    for (const Lane& lane : lanes_) {
      n += lane.count.load(std::memory_order_acquire);
    }
    return n;
  }

  /// Events stamped so far, in EVENT units whatever the batch grain — the
  /// ingest-rate signal AdaptiveDrainPacer's EWMA feeds on. Per-event mode
  /// reads the global counter (1 ticket ≡ 1 event, exactly today's value);
  /// batch mode reads the per-batch-close accumulator, which lags open
  /// batches by at most lanes·(N−1) events (the pacer's idle-poll flush
  /// bounds the resulting latency tail, as before).
  [[nodiscard]] std::uint64_t stamps_issued() const noexcept {
    if (batch_n_ == 1) return seq_.load(std::memory_order_acquire);
    return events_issued_.load(std::memory_order_acquire);
  }

  /// Raw global-clock tickets drawn. In per-event mode this equals
  /// stamps_issued(); in batch mode it is what the batching amortizes —
  /// tests assert tickets_issued() << events recorded.
  [[nodiscard]] std::uint64_t tickets_issued() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

  /// Events recorded but not yet drained — the quantity AdaptiveDrainPacer
  /// paces on. Approximate by nature (both ends move concurrently). Batch
  /// mode derives it from the published lane counts (an open batch's
  /// already-published events are drainable, so they must count), and
  /// saturates because a drain may race ahead of a stale count sum.
  [[nodiscard]] std::uint64_t approx_pending() const noexcept {
    if (batch_n_ == 1) {
      return seq_.load(std::memory_order_acquire) -
             drained_events_.load(std::memory_order_acquire);
    }
    const std::uint64_t published = num_events();
    const std::uint64_t drained =
        drained_events_.load(std::memory_order_acquire);
    return published > drained ? published - drained : 0;
  }

  /// Close the calling lane's open stamp batch, if any: its events keep the
  /// ticket they already carry, but no further event will join it. MUST be
  /// called by the lane's owning thread (the batch fields are owner-private)
  /// — RuntimeBase calls it on every commit-window transition so a batch
  /// never spans one. No-op in per-event mode.
  void flush_lane(std::uint32_t lane_id) {
    assert(lane_id < sim::kMaxThreads);
    if (batch_n_ == 1) return;
    Lane& lane = lanes_[lane_id];
    if (lane.batch_ticket == kNoTicket) return;
    events_issued_.fetch_add(lane.batch_len, std::memory_order_release);
    lane.batch_ticket = kNoTicket;
    lane.batch_len = 0;
    lane.open_ticket.store(kNoTicket, std::memory_order_release);
  }

  /// The batch-stamp grain this engine was built with.
  [[nodiscard]] std::uint32_t stamp_batch() const noexcept { return batch_n_; }

  /// Epoch merge: append to `out` every not-yet-drained event whose stamp
  /// belongs to the contiguous completed prefix of the global ticket
  /// sequence. Safe to call concurrently with recording (from ONE draining
  /// thread); events in flight past the first ticket gap stay pending until
  /// a later drain. A k-way merge over the per-lane chunk cursors (each
  /// lane is stamp-sorted by construction), copying each event exactly
  /// once, chunk -> out; the cursors cache the stable chunk pointers, so
  /// the per-lane spinlock is touched only when a lane grew a new chunk,
  /// and nothing is allocated once `out` and the cursor caches reach their
  /// high-water capacity. Returns the number of events appended.
  ///
  /// Batch mode: a ticket may cover several events (all from one lane, in
  /// its push order). The merge consumes a whole ticket run at a time; at
  /// the published tail it distinguishes a STILL-OPEN batch (the lane's
  /// open_ticket gate reads next_seq_ — emit what is published but keep
  /// next_seq_ parked on the ticket, the rest of the batch completes the
  /// same stamp later) from a CLOSED one (a single count reload after the
  /// acquire read of the gate is guaranteed to show the batch's full tail
  /// — the close store is sequenced after every tail publish — so the
  /// ticket can be retired).
  std::size_t drain(EventBatch& out) {
    const std::lock_guard<std::mutex> guard(merge_mu_);
    if (next_seq_ == seq_.load(std::memory_order_acquire)) return 0;
    // A ticket parked by an earlier drain (its batch was open, its
    // published prefix already emitted) is re-examined here: once the
    // lane's gate has moved on, the batch is closed, and if no published
    // event still carries the parked ticket, the emitted prefix was the
    // whole batch — retire the ticket or the merge wedges on it forever
    // (the lane re-enters the heap only with NEWER stamps).
    if (stall_lane_ != kNoLane) {
      if (lanes_[stall_lane_].open_ticket.load(std::memory_order_acquire) !=
          next_seq_) {
        DrainCursor& cur = cursors_[stall_lane_];
        refresh_cursor(stall_lane_, cur);
        if (cur.taken == cur.published ||
            stamp_at(cur, cur.taken) != next_seq_) {
          ++next_seq_;
        }
        stall_lane_ = kNoLane;
      }
    }
    heap_.clear();
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      DrainCursor& cur = cursors_[l];
      refresh_cursor(l, cur);
      if (cur.taken < cur.published) {
        heap_.push_back({stamp_at(cur, cur.taken), l});
      }
    }
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});

    std::size_t consumed = 0;
    bool stalled = false;
    while (!stalled && !heap_.empty() && heap_.front().first == next_seq_) {
      const std::size_t l = heap_.front().second;
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
      DrainCursor& cur = cursors_[l];
      // Consume the lane's whole run of consecutive tickets before going
      // back to the heap (runs are long when one thread records a burst).
      for (;;) {
        if (cur.taken == cur.published) {
          if (batch_n_ > 1 && lanes_[l].open_ticket.load(
                                  std::memory_order_acquire) == next_seq_) {
            // Open batch: its published prefix is already emitted (sound —
            // the batch's events are contiguous at this ticket), but the
            // ticket is not complete. Park next_seq_ on it and remember the
            // lane so a later drain can retire the ticket once it closes.
            stalled = true;
            stall_lane_ = l;
            break;
          }
          // Ticket closed (or per-event mode): one reload catches a tail
          // published between the cursor refresh and the close.
          const std::size_t before = cur.published;
          refresh_cursor(l, cur);
          if (cur.published == before) {
            ++next_seq_;
            break;
          }
          continue;
        }
        const std::uint64_t s = stamp_at(cur, cur.taken);
        if (s != next_seq_) {
          ++next_seq_;
          if (s != next_seq_) {
            // This lane's next ticket is not adjacent: park it in the heap.
            heap_.push_back({s, l});
            std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
            break;
          }
        }
        out.push_back(event_at(cur, cur.taken));
        ++cur.taken;
        ++consumed;
      }
    }
    drained_events_.store(
        drained_events_.load(std::memory_order_relaxed) + consumed,
        std::memory_order_release);
    return consumed;
  }

  [[nodiscard]] const core::ObjectModel& model() const noexcept {
    return model_;
  }

 private:
  struct StampedEvent {
    std::uint64_t seq = 0;
    core::Event event;
  };

  static constexpr std::size_t kChunkSize = 4096;  // events per lane chunk

  /// Fixed-size chunk of deliberately UNINITIALIZED slots (zeroing 160KB
  /// on first use would dwarf short recordings). The publication protocol
  /// makes this safe: a slot is written before the lane's count covers it,
  /// and readers never touch slots at or above the count they loaded.
  struct Chunk {
    struct Slot {
      union {
        StampedEvent value;  // trivially copyable; lifetime starts at store
      };
      Slot() noexcept {}  // NOLINT(modernize-use-equals-default): no init
    };
    std::array<Slot, kChunkSize> slots;
  };
  static_assert(std::is_trivially_copyable_v<StampedEvent>,
                "the uninitialized-chunk protocol stores into raw union "
                "slots; a non-trivial StampedEvent would need placement-new");

  /// "No open batch" sentinel for the batch-ticket fields below.
  static constexpr std::uint64_t kNoTicket = ~std::uint64_t{0};

  /// One per-process single-writer buffer. The owning process is the only
  /// writer; it publishes each entry with a release store of `count`.
  /// Readers load `count` (acquire) and may then read any entry below it —
  /// chunks never move once allocated, so no lock is needed on the hot
  /// path. The spinlock guards chunk-list growth (once per kChunkSize
  /// events), reader snapshots of the chunk-pointer list, and the rare
  /// completion-stamp appends. `tail` is the writer's private cache of the
  /// current chunk, saving the vector indirection per push. Padded so
  /// lanes do not false-share.
  ///
  /// Batch-stamp state (unused when batch_n_ == 1): `batch_ticket` /
  /// `batch_len` are owner-private (only the lane's writer touches them);
  /// `open_ticket` is the drain-side gate — it holds the open batch's
  /// ticket, stored (release) BEFORE the batch's first event publishes and
  /// cleared (release) only AFTER a closing batch's last event published,
  /// so a drainer that acquire-reads it can tell "this ticket may still
  /// grow" from "this ticket is complete once I reload the count".
  struct alignas(64) Lane {
    mutable util::SpinLock mu;
    std::vector<std::unique_ptr<Chunk>> chunks;
    Chunk* tail{nullptr};
    std::atomic<std::size_t> count{0};
    std::vector<std::pair<core::TxId, std::uint64_t>> stamps;
    std::uint64_t batch_ticket{kNoTicket};
    std::uint32_t batch_len{0};
    std::atomic<std::uint64_t> open_ticket{kNoTicket};
  };

  /// Stamp one event in batch mode (batch_n_ > 1); returns its ticket.
  /// Seqlock rule: extend the open batch only if the global counter still
  /// reads batch_ticket + 1 — no event anywhere (in particular no commit
  /// record) drew a ticket since the batch opened, so the batch's events
  /// are contiguous in every admissible order. Commit/abort records are
  /// serialization points and never share a ticket ("serial at birth").
  [[nodiscard]] std::uint64_t batch_stamp(Lane& lane, const core::Event& e) {
    const bool serial = e.kind == core::EventKind::kCommit ||
                        e.kind == core::EventKind::kAbort;
    if (!serial && lane.batch_ticket != kNoTicket &&
        lane.batch_len < batch_n_ &&
        seq_.load(std::memory_order_acquire) == lane.batch_ticket + 1) {
      ++lane.batch_len;
      return lane.batch_ticket;
    }
    if (lane.batch_ticket != kNoTicket) {
      // Close the open batch: its events become visible to stamps_issued()
      // (event-unit accounting, one RMW per batch — the amortization).
      events_issued_.fetch_add(lane.batch_len, std::memory_order_release);
      lane.batch_ticket = kNoTicket;
      lane.batch_len = 0;
    }
    const std::uint64_t ticket =
        seq_.fetch_add(1, std::memory_order_relaxed);
    if (serial) {
      events_issued_.fetch_add(1, std::memory_order_release);
      lane.open_ticket.store(kNoTicket, std::memory_order_release);
      return ticket;
    }
    lane.batch_ticket = ticket;
    lane.batch_len = 1;
    // Publish the gate before the event itself publishes (the caller's
    // count store is sequenced after us): a drainer that sees a ticket-T
    // event therefore sees open_ticket == T or a later value, never a
    // stale pre-T one.
    lane.open_ticket.store(ticket, std::memory_order_release);
    return ticket;
  }

  void push(std::uint32_t lane_id, const core::Event& e) {
    // A lane id out of range is a caller bug (the same id already indexes
    // RuntimeBase::rec_tx_); wrapping it would merge two writers onto one
    // single-writer lane and wedge drain() on a never-published stamp.
    assert(lane_id < sim::kMaxThreads);
    Lane& lane = lanes_[lane_id];
    const std::size_t i = lane.count.load(std::memory_order_relaxed);
    if (i == lane.chunks.size() * kChunkSize) {
      // Default-init (`new Chunk`, not make_unique's value-init `new
      // Chunk()`): value-initialization zero-fills the whole chunk before
      // the no-op Slot constructors run — a ~230KB memset every
      // kChunkSize events that the uninitialized-slot protocol exists to
      // avoid. Allocated outside the lock.
      std::unique_ptr<Chunk> chunk(new Chunk);
      const std::lock_guard<util::SpinLock> guard(lane.mu);
      lane.tail = chunk.get();
      lane.chunks.push_back(std::move(chunk));
    }
    // The stamp is drawn at the instant of recording (inside the caller's
    // window, when one is held): its order is the semantic order. The
    // fetch_add can be relaxed: RMWs on one atomic are totally ordered and
    // happens-before implies modification order, so any cross-thread
    // ordering established by the runtime (or a window) yields ordered
    // stamps; the release store of `count` is what publishes the slot.
    // Field-wise stores (not a StampedEvent temporary) keep the compiler
    // from spilling through a 56-byte memcpy per event.
    StampedEvent& slot = lane.tail->slots[i % kChunkSize].value;
    if (batch_n_ == 1) {
      slot.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    } else {
      slot.seq = batch_stamp(lane, e);
    }
    slot.event = e;
    lane.count.store(i + 1, std::memory_order_release);
  }
  void push(std::uint32_t lane_id, const core::Event& e, core::TxId tx,
            std::uint64_t stamp) {
    push(lane_id, e);
    Lane& lane = lanes_[lane_id];
    const std::lock_guard<util::SpinLock> guard(lane.mu);
    lane.stamps.emplace_back(tx, stamp);
  }

  /// Copy the published entries [from, lane.count) of one lane into `out`.
  static void copy_published(const Lane& lane, std::size_t from,
                             std::vector<StampedEvent>& out) {
    const std::size_t n = lane.count.load(std::memory_order_acquire);
    if (from >= n) return;
    // Snapshot the chunk pointers under the lock (the writer may grow the
    // list concurrently); the chunks themselves are stable.
    std::vector<Chunk*> chunks;
    {
      const std::lock_guard<util::SpinLock> guard(lane.mu);
      chunks.reserve(lane.chunks.size());
      for (const auto& c : lane.chunks) chunks.push_back(c.get());
    }
    for (std::size_t i = from; i < n; ++i) {
      out.push_back(chunks[i / kChunkSize]->slots[i % kChunkSize].value);
    }
  }

  [[nodiscard]] std::vector<StampedEvent> collect() const {
    std::vector<StampedEvent> all;
    for (const Lane& lane : lanes_) {
      copy_published(lane, 0, all);
    }
    // stable_sort: batch mode hands several events the same seq; their
    // relative order in `all` is the lane push order (collect appends each
    // lane in order, and one ticket never spans lanes), which is exactly
    // the order drain() emits — keep it.
    std::stable_sort(all.begin(), all.end(),
                     [](const StampedEvent& a, const StampedEvent& b) {
                       return a.seq < b.seq;
                     });
    return all;
  }

  core::ObjectModel model_;
  std::array<Lane, sim::kMaxThreads> lanes_;
  std::atomic<std::uint64_t> seq_{0};
  /// Events drained so far (event units, accumulated per drain).
  std::atomic<std::uint64_t> drained_events_{0};
  /// Events whose batch has CLOSED (event units; maintained only when
  /// batch_n_ > 1 — per-event mode reads seq_ instead and pays zero extra
  /// RMWs).
  std::atomic<std::uint64_t> events_issued_{0};
  std::atomic<core::TxId> next_tx_{1};
  std::uint32_t batch_n_ = 1;
  util::SharedSpinLock window_lock_;

  /// Drain-side view of one lane: consumed count, last loaded published
  /// count, and the cached (stable) chunk pointers.
  struct DrainCursor {
    std::vector<Chunk*> chunks;
    std::size_t taken = 0;
    std::size_t published = 0;
  };

  [[nodiscard]] static std::uint64_t stamp_at(const DrainCursor& cur,
                                              std::size_t i) noexcept {
    return cur.chunks[i / kChunkSize]->slots[i % kChunkSize].value.seq;
  }
  [[nodiscard]] static const core::Event& event_at(const DrainCursor& cur,
                                                   std::size_t i) noexcept {
    return cur.chunks[i / kChunkSize]->slots[i % kChunkSize].value.event;
  }

  /// Reload a cursor's published count and (only if the lane grew a chunk)
  /// refresh its chunk-pointer cache under the lane spinlock.
  void refresh_cursor(std::size_t l, DrainCursor& cur) {
    cur.published = lanes_[l].count.load(std::memory_order_acquire);
    if (cur.published > cur.chunks.size() * kChunkSize) {
      const std::lock_guard<util::SpinLock> lane_guard(lanes_[l].mu);
      for (std::size_t c = cur.chunks.size(); c < lanes_[l].chunks.size();
           ++c) {
        cur.chunks.push_back(lanes_[l].chunks[c].get());
      }
    }
  }

  // Epoch-merge cursor state (drain side only, under merge_mu_).
  std::mutex merge_mu_;
  std::array<DrainCursor, sim::kMaxThreads> cursors_;
  std::vector<std::pair<std::uint64_t, std::size_t>> heap_;  // (stamp, lane)
  std::uint64_t next_seq_ = 0;  // first stamp not yet drained
  /// Lane owning the open batch next_seq_ is parked on, or kNoLane. Set
  /// when drain stalls on an open batch; consulted (and cleared) by the
  /// next drain to retire the ticket once the batch has closed.
  static constexpr std::size_t kNoLane = ~std::size_t{0};
  std::size_t stall_lane_ = kNoLane;
};

/// The original single-mutex engine: every hook appends under one recursive
/// mutex, and both window kinds take that same mutex exclusively. Kept as
/// the measured baseline for the sharded engine and as a differential-
/// testing oracle (both engines must reconstruct the same linearization of
/// a deterministic schedule).
class MutexRecorder final : public RecorderBase {
 public:
  /// Accepts (and ignores) the sharded engine's Options so differential
  /// harnesses can construct either engine from one configuration: the
  /// mutex engine serializes every push, so batching its stamps could
  /// never reorder anything — per-event stamping IS its batch-N behavior.
  explicit MutexRecorder(std::size_t num_vars)
      : model_(core::ObjectModel::registers(num_vars, 0)) {}
  MutexRecorder(std::size_t num_vars, Recorder::Options /*options*/)
      : MutexRecorder(num_vars) {}

  [[nodiscard]] core::TxId begin_tx() override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return next_tx_++;
  }

  void on_inv(std::uint32_t /*lane*/, core::TxId tx, VarId var,
              core::OpCode op, core::Value arg) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::inv(tx, var, op, arg));
  }
  void on_ret(std::uint32_t /*lane*/, core::TxId tx, VarId var,
              core::OpCode op, core::Value arg, core::Value ret,
              std::uint64_t stamp = 0, std::uint64_t ver = 0) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::ret(tx, var, op, arg, ret, stamp, ver));
  }
  void on_try_commit(std::uint32_t /*lane*/, core::TxId tx) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::try_commit(tx));
  }
  void on_commit(std::uint32_t /*lane*/, core::TxId tx,
                 std::uint64_t stamp = 0) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::commit(tx, stamp));
    stamp_[tx] = stamp;
  }
  void on_try_abort(std::uint32_t /*lane*/, core::TxId tx) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::try_abort(tx));
  }
  void on_abort(std::uint32_t /*lane*/, core::TxId tx,
                std::uint64_t stamp = 0) override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::abort(tx, stamp));
    stamp_[tx] = stamp;
  }

  void window_enter(WindowKind /*kind*/) override { mu_.lock(); }
  void window_exit(WindowKind /*kind*/) override { mu_.unlock(); }

  [[nodiscard]] core::History history() const override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return core::History::from_batch(model_, events_);
  }

  [[nodiscard]] std::vector<core::TxId> certificate_order() const override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return detail::certificate_order_of(events_, stamp_);
  }

  [[nodiscard]] std::size_t num_events() const override {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return events_.size();
  }

 private:
  mutable std::recursive_mutex mu_;
  core::ObjectModel model_;
  std::vector<core::Event> events_;
  std::unordered_map<core::TxId, std::uint64_t> stamp_;  // at completion
  core::TxId next_tx_ = 1;
};

}  // namespace optm::stm
