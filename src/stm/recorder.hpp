// Concurrent history recorder: turns live STM executions into
// core::History values that the checkers can judge.
//
// Every hook appends its event under one mutex, so the recorded global
// order is a legal linearization of the actual event order (each event is
// recorded at the moment it semantically occurs: invocations before the
// shared-memory work of the operation, responses after the value is fixed,
// C at the commit point). Commit order is captured separately — it is the
// total order ≪ the certificate checker (Theorem 2) verifies against.
//
// Soundness of the certificate requires more than per-event atomicity: the
// *value sampling* of a read must be atomic with the recording of its
// response, and the *commit point* atomic with the recording of C —
// otherwise a descheduled thread records its event after a conflicting
// commit slipped in between, and the recorded ≪ is no longer a valid
// serialization even though the execution was correct. Runtimes therefore
// wrap those two short sections in window() when a recorder is attached
// (RuntimeBase::RecWindow). Recording mode thus serializes the instants at
// which operations take effect — it changes timing, never algorithm logic —
// and is intended for verification runs; benchmarks run unrecorded.
#pragma once

#include <algorithm>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/history.hpp"
#include "stm/api.hpp"

namespace optm::stm {

class Recorder {
 public:
  explicit Recorder(std::size_t num_vars)
      : model_(core::ObjectModel::registers(num_vars, 0)) {}

  /// Critical section making a shared-memory action atomic with the
  /// recording of its event. Recursive so the on_* hooks may be called
  /// while a window is held.
  [[nodiscard]] std::unique_lock<std::recursive_mutex> window() {
    return std::unique_lock<std::recursive_mutex>(mu_);
  }

  /// Allocate a fresh transaction id (starts at 1; 0 is the §5.4
  /// initializer).
  core::TxId begin_tx() {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return next_tx_++;
  }

  void on_inv(core::TxId tx, VarId var, core::OpCode op, core::Value arg) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::inv(tx, var, op, arg));
  }
  void on_ret(core::TxId tx, VarId var, core::OpCode op, core::Value arg,
              core::Value ret) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::ret(tx, var, op, arg, ret));
  }
  void on_try_commit(core::TxId tx) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::try_commit(tx));
  }
  /// `stamp` is the transaction's serialization stamp within the run. For
  /// runtimes that re-validate the whole read set at the commit point
  /// (DSTM, visible-read, 2PL) the commit record order IS the
  /// serialization order — they pass stamp = 0 and certificate_order()
  /// falls back to record order. Clock-based runtimes serialize read-only
  /// transactions at their snapshot time (TL2's rv, MV's ub), which may lie
  /// before already-recorded commits; they pass composite stamps (2·wv for
  /// updates, 2·rv+1 for read-only) so certificate_order() can interleave
  /// them correctly.
  void on_commit(core::TxId tx, std::uint64_t stamp = 0) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::commit(tx));
    stamp_[tx] = stamp;
  }
  void on_try_abort(core::TxId tx) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::try_abort(tx));
  }
  /// `stamp` is the serialization point of the ABORTED transaction — the
  /// moment its (validated) reads were simultaneously current. Clock-based
  /// runtimes pass 2·rv+1 (the snapshot they read from); record-order
  /// runtimes pass 0 and certificate_order() anchors the transaction at
  /// its last response (its last successful whole-read-set validation).
  void on_abort(core::TxId tx, std::uint64_t stamp = 0) {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    events_.push_back(core::ev::abort(tx));
    stamp_[tx] = stamp;
  }

  /// Snapshot of the recorded history.
  [[nodiscard]] core::History history() const {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    core::History h(model_);
    for (const core::Event& e : events_) h.append(e);
    return h;
  }

  /// The certificate ≪: every recorded transaction ordered by its
  /// serialization point, the key (stamp, seq) where
  ///   * committed:     (commit stamp, position of its C event) — for
  ///     stamp-0 runtimes that is plain commit-record order;
  ///   * non-committed: (abort stamp,  position of its LAST NON-LOCAL READ
  ///     RESPONSE) — the last moment the runtime vouched for its whole
  ///     read set (read responses re-validate in the stamp-0 runtimes;
  ///     WRITE responses do not, so they must not advance the anchor). A
  ///     transaction with no such reads anchors at its first event.
  /// A LOCAL read (preceded by the transaction's own write to the same
  /// register) is answered from the write buffer without validation, so
  /// it must not advance the anchor either. Unlike the naive "committed
  /// first, aborted appended" order, this respects the real-time order of
  /// ALL transactions, which Theorem 2's well-formedness check requires
  /// (an aborted transaction that completed before a later one began must
  /// precede it in ≪).
  [[nodiscard]] std::vector<core::TxId> certificate_order() const {
    const std::lock_guard<std::recursive_mutex> guard(mu_);

    struct Key {
      std::uint64_t stamp = 0;
      std::size_t seq = 0;
      bool committed = false;
      bool seen = false;
    };
    std::unordered_map<core::TxId, Key> keys;
    std::set<std::pair<core::TxId, VarId>> wrote;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const core::Event& e = events_[i];
      Key& k = keys[e.tx];
      if (!k.seen) {
        k.seen = true;
        k.seq = i;  // first-event fallback
      }
      if (e.kind == core::EventKind::kInvoke &&
          e.op == core::OpCode::kWrite) {
        wrote.insert({e.tx, static_cast<VarId>(e.obj)});
      } else if (e.kind == core::EventKind::kResponse &&
                 e.op == core::OpCode::kRead && !k.committed &&
                 !wrote.count({e.tx, static_cast<VarId>(e.obj)})) {
        k.seq = i;
      } else if (e.kind == core::EventKind::kCommit) {
        k.committed = true;
        k.seq = i;
      }
    }
    for (auto& [tx, k] : keys) {
      const auto s = stamp_.find(tx);
      if (s != stamp_.end()) k.stamp = s->second;
    }

    std::vector<core::TxId> order;
    order.reserve(keys.size());
    for (const auto& [tx, k] : keys) order.push_back(tx);
    std::sort(order.begin(), order.end(), [&](core::TxId a, core::TxId b) {
      const Key& ka = keys.at(a);
      const Key& kb = keys.at(b);
      if (ka.stamp != kb.stamp) return ka.stamp < kb.stamp;
      return ka.seq < kb.seq;
    });
    return order;
  }

  [[nodiscard]] std::size_t num_events() const {
    const std::lock_guard<std::recursive_mutex> guard(mu_);
    return events_.size();
  }

 private:
  mutable std::recursive_mutex mu_;
  core::ObjectModel model_;
  std::vector<core::Event> events_;
  std::unordered_map<core::TxId, std::uint64_t> stamp_;  // at completion
  core::TxId next_tx_ = 1;
};

}  // namespace optm::stm
