// Strict two-phase-locking TM — the database-style baseline the paper
// contrasts TM against throughout (§2, §3.6, §6):
//
//   "systems that support full isolation of transactional code from the
//    outside environment, e.g., databases ... can render aborted
//    transactions completely harmless"
//
// Readers take per-variable shared locks, writers exclusive locks, both
// held until after commit (strictness + rigorousness): no transaction ever
// performs a conflicting operation on a variable while another holds it.
// The histories this produces are RIGOROUS in the §3.6 sense — which the
// paper shows is strictly stronger than opacity (tests/stm/twopl_test
// checks recorded runs against core::check_rigorous, and the §3.6
// blind-write example shows what rigor forbids that opacity allows).
//
// Design-space coordinates (§6): reads are VISIBLE (the reader bitmap RMW
// is a shared-memory write on the read path), storage is single-version,
// and deadlock avoidance is wait-die — a requester older than the lock
// holder waits, a younger one aborts itself ("dies"). Aborts therefore
// happen only against live lock holders, i.e. the implementation is
// progressive, and no operation ever validates anything: per-operation
// cost is O(1), exactly the visible-read escape route from Theorem 3.
//
// Wait-die notes: priorities are begin-time stamps from a shared counter
// (smaller = older). Priority reads race with holder turnover; a stale
// comparison can only cause a spurious die or a wait that resolves when
// the stale holder completes — never a deadlock. WaitPolicy::kNoWait turns
// every would-wait into a die, which lets the deterministic tests drive
// interleaved logical processes from one OS thread without spinning.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

/// What a lock requester does when wait-die says "wait".
enum class WaitPolicy : std::uint8_t {
  kSpin,    // backoff-spin until the holder releases (real concurrency)
  kNoWait,  // die immediately (deterministic single-thread driving)
};

class TwoPlStm final : public RuntimeBase {
 public:
  explicit TwoPlStm(std::size_t num_vars, WaitPolicy wait = WaitPolicy::kSpin);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "twopl",
            .invisible_reads = false,  // reader bitmap RMW on every read
            .single_version = true,
            .progressive = true,  // dies only against live holders
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  struct VarMeta {
    sim::BaseWord readers;  // bitmap: bit s = process s holds a shared lock
    sim::BaseWord writer;   // slot + 1 of the exclusive holder, 0 = free
    sim::BaseWord value;    // latest committed value (single-version)
  };

  struct Slot {
    bool active = false;
    std::uint64_t ts = 0;          // wait-die priority (smaller = older)
    std::vector<VarId> read_locked;
    std::vector<VarId> write_locked;
    WriteSet ws;  // buffered values, installed at commit under the locks
  };

  [[nodiscard]] static constexpr std::uint64_t bit_of(std::uint32_t slot) noexcept {
    return std::uint64_t{1} << slot;
  }

  [[nodiscard]] bool holds_read(const Slot& slot, VarId var) const noexcept;
  [[nodiscard]] bool holds_write(const Slot& slot, VarId var) const noexcept;

  /// Shared-lock `var`. Returns false if wait-die ruled "die".
  [[nodiscard]] bool lock_read(sim::ThreadCtx& ctx, Slot& slot, VarId var);
  /// Exclusive-lock `var` (upgrades an own shared lock). False on "die".
  [[nodiscard]] bool lock_write(sim::ThreadCtx& ctx, Slot& slot, VarId var);

  /// Wait-die arbitration: true = keep trying (wait), false = die.
  [[nodiscard]] bool may_wait_for(sim::ThreadCtx& ctx, const Slot& slot,
                                  std::uint32_t holder);

  void release_all(sim::ThreadCtx& ctx, Slot& slot);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<sim::BaseWord>, sim::kMaxThreads> prio_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
  sim::GlobalClock ts_source_;
  WaitPolicy wait_;
};

}  // namespace optm::stm
