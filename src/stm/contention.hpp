// Contention managers for the eager-acquire (DSTM-style) runtimes.
//
// When a writer finds a variable owned by another live transaction it asks
// the contention manager who yields. The paper defers progress policy to
// contention management ([9], [27] in its bibliography); we ship the
// classical policies so the progressive STMs remain parameterizable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

namespace optm::stm {

enum class CmDecision : std::uint8_t {
  kAbortOther,  // kill the conflicting transaction and proceed
  kAbortSelf,   // abort the requesting transaction
  kWait,        // back off and retry the acquisition
};

/// Everything a policy may consult about one side of a conflict. The
/// fields are atomics because `resolve` reads the RIVAL's live view while
/// the rival keeps executing: the values are advisory (a policy decision
/// made on a slightly stale karma is still a valid decision), but the
/// loads must not be data races.
struct CmTxView {
  std::atomic<std::uint64_t> start_stamp{0};  // begin() timestamp (monotonic)
  std::atomic<std::uint64_t> ops_executed{0}; // reads+writes so far ("karma")
  std::atomic<std::uint32_t> retries{0};      // consecutive aborts of this chain
};

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual CmDecision resolve(const CmTxView& self,
                                           const CmTxView& other,
                                           std::uint32_t attempt) = 0;
};

/// Always aborts the transaction in the way (obstruction-freedom's default).
class AggressiveCm final : public ContentionManager {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "aggressive"; }
  [[nodiscard]] CmDecision resolve(const CmTxView&, const CmTxView&,
                                   std::uint32_t) override {
    return CmDecision::kAbortOther;
  }
};

/// Backs off a bounded number of times, then aborts the other transaction.
class PoliteCm final : public ContentionManager {
 public:
  explicit PoliteCm(std::uint32_t max_waits = 4) noexcept : max_waits_(max_waits) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "polite"; }
  [[nodiscard]] CmDecision resolve(const CmTxView&, const CmTxView&,
                                   std::uint32_t attempt) override {
    return attempt < max_waits_ ? CmDecision::kWait : CmDecision::kAbortOther;
  }

 private:
  std::uint32_t max_waits_;
};

/// Timid policy: always aborts itself (useful as a worst-case baseline;
/// livelock-prone under contention, hence the retry backoff in the runtime).
class TimidCm final : public ContentionManager {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "timid"; }
  [[nodiscard]] CmDecision resolve(const CmTxView&, const CmTxView&,
                                   std::uint32_t) override {
    return CmDecision::kAbortSelf;
  }
};

/// Karma: the transaction with less accumulated work yields.
class KarmaCm final : public ContentionManager {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "karma"; }
  [[nodiscard]] CmDecision resolve(const CmTxView& self, const CmTxView& other,
                                   std::uint32_t attempt) override {
    const std::uint64_t self_karma = self.ops_executed + self.retries;
    const std::uint64_t other_karma = other.ops_executed + other.retries;
    if (self_karma >= other_karma) return CmDecision::kAbortOther;
    return attempt < 2 ? CmDecision::kWait : CmDecision::kAbortSelf;
  }
};

/// Greedy: the older transaction (smaller start stamp) wins outright.
class GreedyCm final : public ContentionManager {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "greedy"; }
  [[nodiscard]] CmDecision resolve(const CmTxView& self, const CmTxView& other,
                                   std::uint32_t) override {
    return self.start_stamp <= other.start_stamp ? CmDecision::kAbortOther
                                                 : CmDecision::kAbortSelf;
  }
};

[[nodiscard]] std::unique_ptr<ContentionManager> make_contention_manager(
    std::string_view name);

}  // namespace optm::stm
