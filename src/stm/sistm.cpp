#include "stm/sistm.hpp"

#include <algorithm>

#include "util/spin.hpp"

namespace optm::stm {

SiStm::SiStm(std::size_t num_vars, std::size_t depth)
    : RuntimeBase(num_vars), depth_(depth == 0 ? 1 : depth), vars_(num_vars) {
  // Ring slot 0 holds the initial version (stamp 0, value 0): one install.
  for (auto& padded : vars_) {
    padded->ring = std::vector<Version>(depth_);
    padded->seqlock.init(2);
  }
}

void SiStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.snapped = false;
  slot.snapshot = 0;
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool SiStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  ensure_snapshot(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, 2 * slot.snapshot + 1);  // serialize at the snapshot
  return false;
}

bool SiStm::read_version(sim::ThreadCtx& ctx, VarId var, std::uint64_t bound,
                         std::uint64_t& stamp, std::uint64_t& value) {
  VarMeta& meta = *vars_[var];
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t s1 = meta.seqlock.load(ctx);
    if (s1 & 1) {  // writer installing
      backoff.pause();
      continue;
    }
    const std::uint64_t installs = s1 / 2;
    bool found = false;
    const std::size_t scan = std::min<std::size_t>(depth_, installs);
    for (std::size_t i = 0; i < scan; ++i) {
      const std::size_t pos = (installs - 1 - i) % depth_;
      const std::uint64_t st = meta.ring[pos].stamp.load(ctx);
      if (st <= bound) {
        stamp = st;
        value = meta.ring[pos].value.load(ctx);
        found = true;
        break;
      }
    }
    if (meta.seqlock.load(ctx) != s1) {
      backoff.pause();  // ring changed under us
      continue;
    }
    return found;
  }
}

bool SiStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  const RecWindow window = rec_sample_window();
  ensure_snapshot(ctx, slot);
  std::uint64_t stamp = 0;
  std::uint64_t val = 0;
  // Pure snapshot read: consistent by construction, never validated, no
  // read set is even kept. The §2 zombie hazards cannot arise — this is
  // the half of opacity SI does keep. Fails only if the snapshot's
  // version was evicted from the bounded ring.
  if (!read_version(ctx, var, slot.snapshot, stamp, val)) return fail_op(ctx);
  out = val;
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool SiStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  ensure_snapshot(ctx, slot);  // writes pin the snapshot too (first access)
  slot.ws.upsert(var, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool SiStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  if (slot.ws.empty()) {
    const RecWindow window = rec_sample_window();
    ensure_snapshot(ctx, slot);
    slot.active = false;
    ++ctx.stats.commits;
    // All reads came from the begin-time snapshot: serialize there.
    rec_commit(ctx, 2 * slot.snapshot + 1);
    return true;
  }

  const RecWindow window = rec_commit_window(ctx);
  ensure_snapshot(ctx, slot);

  // Lock write-set seqlocks in VarId order.
  std::vector<WriteEntry> order = slot.ws.entries();
  std::sort(order.begin(), order.end(),
            [](const WriteEntry& a, const WriteEntry& b) { return a.var < b.var; });

  auto unlock_upto = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      VarMeta& meta = *vars_[order[i].var];
      const std::uint64_t s = meta.seqlock.load(ctx);
      meta.seqlock.store(ctx, s - 1);  // restore even (no install)
    }
  };
  auto fail = [&](std::size_t locked_upto) {
    unlock_upto(locked_upto);
    slot.active = false;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx, 2 * slot.snapshot + 1);
    return false;
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    VarMeta& meta = *vars_[order[i].var];
    util::Backoff backoff;
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::uint64_t s = meta.seqlock.load(ctx);
      if ((s & 1) == 0 && meta.seqlock.cas(ctx, s, s + 1)) break;
      if (attempt >= 32) return fail(i);
      backoff.pause();
    }
  }

  // First committer wins — the ONLY validation SI performs, and it covers
  // the WRITE set, not the read set (the one-knob difference from MvStm).
  // A variable we wrote that a rival committed past our snapshot means the
  // rival was first: we abort. Reads are never revalidated, which is what
  // admits write skew.
  {
    const std::uint64_t before = ctx.steps.total();
    for (const WriteEntry& w : order) {
      VarMeta& meta = *vars_[w.var];
      const std::uint64_t s = meta.seqlock.load(ctx);  // odd: locked by us
      const std::uint64_t installs = (s - 1) / 2;
      const std::size_t newest = (installs - 1) % depth_;
      if (meta.ring[newest].stamp.load(ctx) > slot.snapshot) {
        ctx.stats.validation_steps += ctx.steps.total() - before;
        return fail(order.size());
      }
    }
    ctx.stats.validation_steps += ctx.steps.total() - before;
  }

  const std::uint64_t wv = clock_.advance(ctx);
  rec_commit(ctx, 2 * wv);  // commit point: FCW held while locked

  // Install the new versions and release (seqlock advances to a fresh even
  // value, signalling one more install).
  for (const WriteEntry& w : order) {
    VarMeta& meta = *vars_[w.var];
    const std::uint64_t s = meta.seqlock.load(ctx);  // odd
    const std::uint64_t installs = (s - 1) / 2;
    const std::size_t pos = installs % depth_;
    meta.ring[pos].stamp.store(ctx, wv);
    meta.ring[pos].value.store(ctx, w.value);
    meta.seqlock.store(ctx, s + 1);  // even, installs + 1
  }
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void SiStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  ensure_snapshot(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, 2 * slot.snapshot + 1);
}

}  // namespace optm::stm
