// Snapshot-isolation STM (the SI-STM variant of Riegel, Felber, Fetzer —
// TRANSACT'06), one of the paper's two named examples of implementations
// that "explicitly trade safety guarantees, while recognizing the
// resulting dangers, for improved performance" (§1):
//
//   "There are indeed TM implementations that do not ensure opacity ...
//    Examples are: a version of SI-STM [26] and the TM described in [7]."
//
// The algorithm is MvStm with one knob turned: commit-time validation
// covers the WRITE set (first committer wins) instead of the read set.
// Reads always come from the begin-time snapshot, so — unlike WeakStm —
// live transactions never observe an inconsistent state: the §2 zombie
// hazards (divide-by-zero, wild array walks) are structurally impossible,
// and find_inconsistent_snapshot stays empty on every recorded run. What
// breaks instead is the serializability of the COMMITTED transactions:
// two transactions that read an overlapping snapshot and write disjoint
// variables both commit, producing the classic write-skew anomaly that
// check_opacity (and plain serializability) reject. SiStm and WeakStm
// thus bracket opacity from two sides — WeakStm violates requirement (3)
// of §5 (consistent state for live transactions) while keeping committed
// serializability, SiStm keeps consistent live snapshots while giving up
// committed serializability — which is exactly why the paper needs one
// criterion that implies both.
//
// §6 coordinates: invisible reads (snapshot reads write nothing shared),
// multi-version, NOT progressive (first-committer-wins aborts a writer
// whose rival already committed), NOT opaque (write skew).
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class SiStm final : public RuntimeBase {
 public:
  /// `depth` = committed versions retained per variable (>= 1).
  explicit SiStm(std::size_t num_vars, std::size_t depth = 8);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "sistm",
            .invisible_reads = true,
            .single_version = false,
            .progressive = false,
            .opaque = false};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

 private:
  // Per-variable seqlock + version ring, exactly as in MvStm: value =
  // 2 * installs, odd while a writer installs; newest slot is
  // (installs - 1) % depth.
  struct Version {
    sim::BaseWord stamp;
    sim::BaseWord value;
  };
  struct VarMeta {
    sim::BaseWord seqlock;
    std::vector<Version> ring;
  };

  struct Slot {
    bool active = false;
    bool snapped = false;        // snapshot taken yet? (lazy, LSA-style)
    std::uint64_t snapshot = 0;  // first-operation clock sample
    WriteSet ws;
  };

  /// Read the newest (stamp, value) with stamp <= bound. Returns false if
  /// every retained version is newer than bound (evicted).
  [[nodiscard]] bool read_version(sim::ThreadCtx& ctx, VarId var,
                                  std::uint64_t bound, std::uint64_t& stamp,
                                  std::uint64_t& value);

  /// Lazy snapshot, for the same ≺_H reason as MvStm::ensure_snapshot:
  /// the real-time order is defined by the first EVENT, so the snapshot
  /// must not predate it.
  void ensure_snapshot(sim::ThreadCtx& ctx, Slot& slot) {
    if (!slot.snapped) {
      slot.snapshot = clock_.read(ctx);
      slot.snapped = true;
    }
  }

  bool fail_op(sim::ThreadCtx& ctx);

  std::size_t depth_;
  std::vector<util::Padded<VarMeta>> vars_;
  sim::GlobalClock clock_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
