// SoakDriver: the record → drain → verify pipeline as a library.
//
// One call runs the full recorded-mode pipeline that examples/recorded_soak
// used to hand-roll: a multi-threaded random mix recording into the
// sharded Recorder, a verifier thread pumping stamp-contiguous drained
// batches through an EventSink chain (live certificate monitor, and
// optionally any extra sink — e.g. log::LogWriterSink for a durable
// audit trail), then the sharded offline driver re-verifying the complete
// history. Options in, structured results out; the example binaries are
// thin CLI wrappers over this class.
#pragma once

#include <optional>
#include <string>

#include "core/online.hpp"
#include "stm/cli_flags.hpp"
#include "stm/recorder.hpp"
#include "stm/sink.hpp"

namespace optm::stm {

struct SoakOptions {
  /// Runtime / policy / window mode (the shared CLI vocabulary).
  RunFlags run;
  std::size_t target_events = 1'200'000;
  std::uint32_t threads = 4;
  std::uint32_t vars = 64;
  std::uint32_t ops_per_tx = 4;
  std::uint64_t seed = 20260730;
  /// Register shards for the offline re-verification; kept at the CLI
  /// default. Set offline_verify=false to skip that stage entirely.
  std::size_t shards = 4;
  bool live_monitor = true;
  /// Worker threads for the LIVE certification path: 1 keeps the serial
  /// OnlineCertificateMonitor; > 1 certifies live with the parallel
  /// streaming certifier (core/parallel_stream.hpp, shards resolved from
  /// this budget), whose verdict and flag position are identical.
  /// kBlindWriteSmart ignores this (serial fallback — it cannot shard).
  std::size_t live_stream_threads = 1;
  bool offline_verify = true;
  /// Tee'd into the drain pipeline next to the live monitor (not owned).
  EventSink* extra_sink = nullptr;
  AdaptiveDrainPacer::Options pacing{};
};

struct SoakResult {
  // Echoed run descriptors (the optm-soak-v1 vocabulary).
  std::string stm;
  std::string window_mode;
  core::VersionOrderPolicy policy = core::VersionOrderPolicy::kCommitOrder;

  std::size_t recorded_events = 0;
  std::size_t live_batches = 0;
  double live_events_per_sec = 0.0;
  bool live_ok = true;
  std::optional<core::OnlineViolation> live_violation;
  /// True when the live path ran the parallel streaming certifier rather
  /// than the serial monitor (live_stream_threads > 1 and the policy can
  /// shard). threads/shards echo what the certifier actually used.
  bool live_parallel = false;
  std::size_t live_threads_used = 1;
  std::size_t live_shards_used = 1;

  /// False if the extra sink reported a failure (e.g. a log write error).
  bool sink_ok = true;

  bool offline_ran = false;
  bool offline_ok = true;
  std::optional<core::OnlineViolation> offline_violation;
  double offline_events_per_sec = 0.0;
  std::size_t offline_shards = 0;

  [[nodiscard]] bool ok() const noexcept {
    return live_ok && sink_ok && offline_ok;
  }
};

class SoakDriver {
 public:
  /// Throws std::invalid_argument for an unknown runtime or a runtime
  /// that cannot record window-free when options.run asks for it.
  explicit SoakDriver(SoakOptions options);

  [[nodiscard]] SoakResult run();

 private:
  SoakOptions options_;
};

}  // namespace optm::stm
