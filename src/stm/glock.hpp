// GlobalLockStm: the §1 reference point — "concurrency as easy as with
// coarse-grained critical sections".
//
// One global lock serializes whole transactions: trivially opaque (every
// history it generates is literally sequential), never aborts (progressive
// vacuously), and the baseline every real TM is trying to beat on
// scalability. Included so the throughput benches can show what the
// fine-grained designs buy — and the contract/recorded tests treat it as
// just another Stm.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class GlobalLockStm final : public RuntimeBase {
 public:
  explicit GlobalLockStm(std::size_t num_vars);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "glock",
            .invisible_reads = false,  // begin() writes the lock word
            .single_version = true,
            .progressive = true,  // vacuously: it never forcefully aborts
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  struct Slot {
    bool active = false;
    WriteSet undo;  // original values, restored on voluntary abort
  };

  std::vector<util::Padded<sim::BaseWord>> values_;
  util::Padded<sim::BaseWord> lock_;  // holder slot + 1, 0 = free
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
