#include "stm/dstm.hpp"

#include "util/spin.hpp"

namespace optm::stm {

DstmStm::DstmStm(std::size_t num_vars, std::unique_ptr<ContentionManager> cm)
    : RuntimeBase(num_vars),
      vars_(num_vars),
      cm_(cm != nullptr ? std::move(cm) : std::make_unique<AggressiveCm>()) {}

void DstmStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  ++slot.epoch;
  slot.rs.clear();
  slot.ws.clear();
  slot.cm_view.start_stamp = start_stamps_.fetch_add(1) + 1;
  slot.cm_view.ops_executed = 0;
  slot.cm_view.retries = slot.cm_retries;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kActive));
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool DstmStm::validate(sim::ThreadCtx& ctx, Slot& slot) {
  const std::uint64_t before = ctx.steps.total();
  bool ok = true;
  for (const ReadEntry& r : slot.rs) {
    if (vars_[r.var]->version.load(ctx) != r.version) {
      ok = false;
      break;
    }
  }
  // A transaction that owns variables may have been aborted by a rival.
  if (ok && !slot.ws.empty()) {
    ok = status_[ctx.id()]->load(ctx) == status_word(slot.epoch, kActive);
  }
  ctx.stats.validation_steps += ctx.steps.total() - before;
  return ok;
}

void DstmStm::release_owned(sim::ThreadCtx& ctx, Slot& slot) {
  for (const OwnedEntry& e : slot.ws) {
    std::uint64_t expect = owner_word(ctx.id(), slot.epoch);
    (void)vars_[e.var]->owner.cas(ctx, expect, 0);  // may have been stolen
  }
  slot.ws.clear();
}

bool DstmStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++slot.cm_retries;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx);
  return false;
}

bool DstmStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const OwnedEntry* own = find_owned(slot, var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();

  // Sample a stable (value, version) pair of the latest committed state.
  // Versions advance by 2 per commit; an odd version marks a write-back in
  // flight (seqlock discipline), so a torn pair is impossible.
  std::uint64_t ver = 0;
  std::uint64_t val = 0;
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t own = meta.owner.load(ctx);
    if (own != 0) {
      const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
      const std::uint64_t e = own & 0xffffffffULL;
      const std::uint64_t st = status_[s]->load(ctx);
      if (epoch_of(st) == e && state_of(st) == kCommitted) {
        // Commit point passed but write-back in flight: wait it out.
        backoff.pause();
        continue;
      }
      // Active owner: the committed state is still (value, version) — an
      // invisible read of the old value. Aborted/stale: likewise.
    }
    ver = meta.version.load(ctx);
    val = meta.value.load(ctx);
    if ((ver & 1) == 0 && meta.version.load(ctx) == ver) break;  // stable
    backoff.pause();
  }

  slot.rs.push_back({var, ver});

  // INCREMENTAL VALIDATION (the Θ(k) step of Theorem 3): with invisible
  // reads no other process can tell us a concurrent commit overwrote part
  // of our snapshot, so every read re-checks the whole read set.
  if (!validate(ctx, slot)) return fail_op(ctx);

  out = val;
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool DstmStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  for (OwnedEntry& e : slot.ws) {
    if (e.var == var) {
      e.value = value;  // already own it: update the buffered value
      rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
      return true;
    }
  }

  VarMeta& meta = *vars_[var];
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  util::Backoff backoff;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint64_t own = meta.owner.load(ctx);
    if (own == 0) {
      if (meta.owner.cas(ctx, own, me)) break;  // acquired
      continue;
    }
    const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
    const std::uint64_t e = own & 0xffffffffULL;
    const std::uint64_t st = status_[s]->load(ctx);
    if (epoch_of(st) != e || state_of(st) == kAborted) {
      // Stale or aborted owner: steal the ownership record.
      if (meta.owner.cas(ctx, own, me)) break;
      continue;
    }
    if (state_of(st) == kCommitted) {
      backoff.pause();  // write-back in flight; will release shortly
      continue;
    }
    // Live conflict: ask the contention manager.
    switch (cm_->resolve(slot.cm_view, slots_[s]->cm_view, attempt)) {
      case CmDecision::kAbortOther: {
        std::uint64_t expect = status_word(e, kActive);
        (void)status_[s]->cas(ctx, expect, status_word(e, kAborted));
        continue;  // re-examine (either aborted now, or it just finished)
      }
      case CmDecision::kAbortSelf:
        return fail_op(ctx);
      case CmDecision::kWait:
        backoff.pause();
        continue;
    }
  }

  slot.ws.push_back({var, value, meta.version.load(ctx)});
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool DstmStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  const RecWindow window = rec_commit_window();

  if (!validate(ctx, slot)) {
    status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
    release_owned(ctx, slot);
    slot.active = false;
    ++slot.cm_retries;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx);
    return false;
  }

  // Commit point: the status-word CAS (revocable until this instant).
  std::uint64_t expect = status_word(slot.epoch, kActive);
  if (!status_[ctx.id()]->cas(ctx, expect, status_word(slot.epoch, kCommitted))) {
    release_owned(ctx, slot);
    slot.active = false;
    ++slot.cm_retries;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx);
    return false;
  }
  rec_commit(ctx);

  // Write back and release ownership (odd version while in flight).
  for (const OwnedEntry& e : slot.ws) {
    VarMeta& meta = *vars_[e.var];
    meta.version.store(ctx, e.acq_version + 1);
    meta.value.store(ctx, e.value);
    meta.version.store(ctx, e.acq_version + 2);
    meta.owner.store(ctx, 0);
  }
  slot.ws.clear();
  slot.active = false;
  slot.cm_retries = 0;
  ++ctx.stats.commits;
  return true;
}

void DstmStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx);
}

}  // namespace optm::stm
