#include "stm/dstm.hpp"

#include "util/spin.hpp"

namespace optm::stm {

DstmStm::DstmStm(std::size_t num_vars, std::unique_ptr<ContentionManager> cm)
    : RuntimeBase(num_vars),
      vars_(num_vars),
      cm_(cm != nullptr ? std::move(cm) : std::make_unique<AggressiveCm>()) {
  // Reads are stamped with their (validation snapshot, orec version) pair
  // and commits publish their ticket through the kCommitting status state
  // before drawing it (the orec-stamp story, dstm.hpp) — the
  // preconditions for dropping the recorder windows.
  window_free_supported_ = true;
}

void DstmStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  ++slot.epoch;
  slot.rv = 0;
  slot.rv_sampled = false;
  slot.rs.clear();
  slot.ws.clear();
  slot.cm_view.start_stamp = start_stamps_.fetch_add(1) + 1;
  slot.cm_view.ops_executed = 0;
  slot.cm_view.retries = slot.cm_retries;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kActive));
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool DstmStm::validate(sim::ThreadCtx& ctx, Slot& slot, State expected) {
  const std::uint64_t before = ctx.steps.total();
  // The validation snapshot is drawn BEFORE any entry is examined: every
  // overwriter of an entry that passes below enters kCommitting — and so
  // draws its commit ticket — after the entry's check, hence after this
  // read, so a pass certifies the whole read set current at stamp 2·rv+1.
  const std::uint64_t rv = clock_.read(ctx);
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  bool ok = true;
  for (const ReadEntry& r : slot.rs) {
    VarMeta& meta = *vars_[r.var];
    // Wait out rival owners past the stamp authority: a kCommitting
    // owner's ticket may predate rv, and a kCommitted owner's write-back
    // is in flight. If it commits, the version bump fails the equality
    // check below; if it aborts, the entry was never in danger. The wait
    // is BOUNDED, failing the validation conservatively: two kCommitting
    // transactions can each read a variable the other owns, and an
    // unbounded wait would deadlock that cycle (a blocked entry is either
    // doomed anyway — a committed owner always writes it back — or
    // conservatively retried).
    util::Backoff backoff;
    bool blocked = false;
    for (std::uint32_t attempt = 0;; ++attempt) {
      const std::uint64_t own = meta.owner.load(ctx);
      if (own == 0 || own == me) break;
      const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
      const std::uint64_t e = own & 0xffffffffULL;
      const std::uint64_t st = status_[s]->load(ctx);
      if (epoch_of(st) != e ||
          (state_of(st) != kCommitting && state_of(st) != kCommitted)) {
        break;
      }
      if (attempt >= 64) {
        blocked = true;
        break;
      }
      backoff.pause();
    }
    if (blocked || meta.version.load(ctx) != r.version) {
      ok = false;
      break;
    }
  }
  // A transaction that owns variables may have been aborted by a rival
  // (rivals can only CAS kActive, so past kCommitting this is stable).
  if (ok && !slot.ws.empty()) {
    ok = status_[ctx.id()]->load(ctx) == status_word(slot.epoch, expected);
  }
  if (ok) {
    slot.rv = rv;
    slot.rv_sampled = true;
  }
  ctx.stats.validation_steps += ctx.steps.total() - before;
  return ok;
}

std::uint64_t DstmStm::abort_stamp(sim::ThreadCtx& ctx, Slot& slot) {
  // Serialize the abort at the last successful validation — the moment
  // the recorded reads were all current. A transaction that never
  // validated (write-only, or killed at its first read) has no read
  // claims to honor and serializes at the abort instant instead: the
  // clock is monotone past every commit whose C record preceded any of
  // its events, which is what certificate_order()'s real-time
  // reconstruction requires of the stamp.
  if (!slot.rv_sampled) slot.rv = clock_.read(ctx);
  return 2 * slot.rv + 1;
}

void DstmStm::release_owned(sim::ThreadCtx& ctx, Slot& slot) {
  for (const OwnedEntry& e : slot.ws) {
    std::uint64_t expect = owner_word(ctx.id(), slot.epoch);
    (void)vars_[e.var]->owner.cas(ctx, expect, 0);  // may have been stolen
  }
  slot.ws.clear();
}

bool DstmStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++slot.cm_retries;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, abort_stamp(ctx, slot));
  return false;
}

bool DstmStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const OwnedEntry* own = find_owned(slot, var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();

  // Sample a stable (value, version) pair of the latest committed state.
  // Versions advance by 2 per commit; an odd version marks a write-back in
  // flight (seqlock discipline), so a torn pair is impossible.
  std::uint64_t ver = 0;
  std::uint64_t val = 0;
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t own = meta.owner.load(ctx);
    if (own != 0) {
      const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
      const std::uint64_t e = own & 0xffffffffULL;
      const std::uint64_t st = status_[s]->load(ctx);
      if (epoch_of(st) == e && state_of(st) == kCommitted) {
        // Commit point passed but write-back in flight: wait it out.
        backoff.pause();
        continue;
      }
      // Active owner: the committed state is still (value, version) — an
      // invisible read of the old value. Aborted/stale: likewise.
    }
    ver = meta.version.load(ctx);
    val = meta.value.load(ctx);
    if ((ver & 1) == 0 && meta.version.load(ctx) == ver) break;  // stable
    backoff.pause();
  }

  slot.rs.push_back({var, ver});

  // INCREMENTAL VALIDATION (the Θ(k) step of Theorem 3): with invisible
  // reads no other process can tell us a concurrent commit overwrote part
  // of our snapshot, so every read re-checks the whole read set.
  if (!validate(ctx, slot)) return fail_op(ctx);

  out = val;
  // The orec-version read-stamp pair: the sampled version word is the
  // writer's 2·wv ticket, just proven current at the validation snapshot
  // (dstm.hpp's orec-stamp story) — all a stamp-space certificate needs,
  // with or without the sampling window.
  rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.rv + 1, ver / 2);
  return true;
}

bool DstmStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  ++slot.cm_view.ops_executed;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  for (OwnedEntry& e : slot.ws) {
    if (e.var == var) {
      e.value = value;  // already own it: update the buffered value
      rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
      return true;
    }
  }

  VarMeta& meta = *vars_[var];
  const std::uint64_t me = owner_word(ctx.id(), slot.epoch);
  util::Backoff backoff;
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint64_t own = meta.owner.load(ctx);
    if (own == 0) {
      if (meta.owner.cas(ctx, own, me)) break;  // acquired
      continue;
    }
    const std::uint32_t s = static_cast<std::uint32_t>((own >> 32) - 1);
    const std::uint64_t e = own & 0xffffffffULL;
    const std::uint64_t st = status_[s]->load(ctx);
    if (epoch_of(st) != e || state_of(st) == kAborted) {
      // Stale or aborted owner: steal the ownership record.
      if (meta.owner.cas(ctx, own, me)) break;
      continue;
    }
    if (state_of(st) == kCommitted || state_of(st) == kCommitting) {
      // Past the stamp authority: not killable, resolves shortly.
      backoff.pause();
      continue;
    }
    // Live conflict: ask the contention manager.
    switch (cm_->resolve(slot.cm_view, slots_[s]->cm_view, attempt)) {
      case CmDecision::kAbortOther: {
        std::uint64_t expect = status_word(e, kActive);
        (void)status_[s]->cas(ctx, expect, status_word(e, kAborted));
        continue;  // re-examine (either aborted now, or it just finished)
      }
      case CmDecision::kAbortSelf:
        return fail_op(ctx);
      case CmDecision::kWait:
        backoff.pause();
        continue;
    }
  }

  slot.ws.push_back({var, value, meta.version.load(ctx)});
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool DstmStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  const RecWindow window = rec_commit_window(ctx);

  auto fail = [&]() {
    status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
    release_owned(ctx, slot);
    slot.active = false;
    ++slot.cm_retries;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx, abort_stamp(ctx, slot));
    return false;
  };

  if (slot.ws.empty()) {
    // Read-only: the commit-time validation below is the serialization
    // point — everything read was simultaneously current at its rv.
    if (!validate(ctx, slot)) return fail();
    std::uint64_t expect = status_word(slot.epoch, kActive);
    if (!status_[ctx.id()]->cas(ctx, expect,
                                status_word(slot.epoch, kCommitted))) {
      return fail();
    }
    slot.active = false;
    slot.cm_retries = 0;
    ++ctx.stats.commits;
    rec_commit(ctx, 2 * slot.rv + 1);  // serialize at the snapshot
    return true;
  }

  // Stamp authority: entering kCommitting makes the intent to commit
  // visible through every owned orec BEFORE the ticket is drawn, so a
  // rival validation that found our orecs still kActive is guaranteed a
  // snapshot below our ticket. Rivals can no longer abort us past this
  // CAS (their kill CAS expects kActive); it fails only if one already
  // did.
  std::uint64_t expect = status_word(slot.epoch, kActive);
  if (!status_[ctx.id()]->cas(ctx, expect,
                              status_word(slot.epoch, kCommitting))) {
    return fail();
  }
  const std::uint64_t wv = clock_.advance(ctx);
  if (!validate(ctx, slot, kCommitting)) return fail();

  // Commit point: no rival can touch the status word past kCommitting,
  // so a plain store completes the transition.
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kCommitted));
  rec_commit(ctx, 2 * wv);

  // Write back and release ownership (odd version while in flight). The
  // final version word is the global ticket 2·wv, so the word a reader
  // samples IS the open rank of the version it read.
  for (const OwnedEntry& e : slot.ws) {
    VarMeta& meta = *vars_[e.var];
    meta.version.store(ctx, e.acq_version + 1);
    meta.value.store(ctx, e.value);
    meta.version.store(ctx, 2 * wv);
    meta.owner.store(ctx, 0);
  }
  slot.ws.clear();
  slot.active = false;
  slot.cm_retries = 0;
  ++ctx.stats.commits;
  return true;
}

void DstmStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  status_[ctx.id()]->store(ctx, status_word(slot.epoch, kAborted));
  release_owned(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, abort_stamp(ctx, slot));
}

}  // namespace optm::stm
