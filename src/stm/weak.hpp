// WeakStm: the control group — an STM that deliberately does NOT ensure
// opacity (the paper's §1: "there are indeed TM implementations that do
// not ensure opacity; these, however, explicitly trade safety guarantees
// ... for improved performance. Examples are: a version of SI-STM and the
// TM described in [Ennals 06]").
//
// Structurally TL2 without the read-time rv check: reads are invisible and
// O(1) with NO validation of any kind; only commit validates (version
// check on the read set, locks on the write set). Consequences:
//  * committed transactions are strictly serializable — all the §3
//    criteria hold for every committed execution;
//  * live and aborted transactions can observe inconsistent snapshots —
//    the §2 zombies (1/(y-x) division by zero, runaway loops) become
//    reachable, which examples/zombie_demo.cpp demonstrates and the
//    recorded-history tests detect with find_inconsistent_snapshot.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class WeakStm final : public RuntimeBase {
 public:
  explicit WeakStm(std::size_t num_vars);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "weak",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,
            .opaque = false};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

 private:
  static constexpr std::uint64_t kLockedBit = 1;
  [[nodiscard]] static constexpr bool locked(std::uint64_t vl) noexcept {
    return (vl & kLockedBit) != 0;
  }
  [[nodiscard]] static constexpr std::uint64_t version_of(std::uint64_t vl) noexcept {
    return vl >> 1;
  }
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint64_t v) noexcept {
    return v << 1;
  }

  struct VarMeta {
    sim::BaseWord lock_ver;
    sim::BaseWord value;
  };

  struct Slot {
    bool active = false;
    std::vector<ReadEntry> rs;
    WriteSet ws;
  };

  std::vector<util::Padded<VarMeta>> vars_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
