#include "stm/norec.hpp"

#include "util/spin.hpp"

namespace optm::stm {

NorecStm::NorecStm(std::size_t num_vars)
    : RuntimeBase(num_vars), values_(num_vars) {
  // Reads are value-validated against a named seqlock snapshot rv and
  // stamped with it (the version half is kNoReadVersion — NOrec tracks
  // values, not versions), so the recorder windows are droppable.
  window_free_supported_ = true;
}

std::uint64_t NorecStm::wait_even(sim::ThreadCtx& ctx) {
  util::Backoff backoff;
  for (;;) {
    const std::uint64_t s = seqlock_->load(ctx);
    if ((s & 1) == 0) return s;
    backoff.pause();
  }
}

bool NorecStm::revalidate(sim::ThreadCtx& ctx, Slot& slot) {
  const std::uint64_t before = ctx.steps.total();
  for (;;) {
    const std::uint64_t s = wait_even(ctx);
    bool ok = true;
    for (const ReadEntry& r : slot.rs) {
      if (values_[r.var]->load(ctx) != r.version) {  // version field = value
        ok = false;
        break;
      }
    }
    if (!ok) {
      ctx.stats.validation_steps += ctx.steps.total() - before;
      return false;
    }
    if (seqlock_->load(ctx) == s) {
      slot.rv = s;
      ctx.stats.validation_steps += ctx.steps.total() - before;
      return true;
    }
    // A commit slipped in mid-validation; try again.
  }
}

void NorecStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.rv_sampled = false;
  slot.rv = 0;
  slot.rs.clear();
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool NorecStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, 2 * slot.rv + 1);  // serialize at the last-valid rv
  return false;
}

bool NorecStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  const RecWindow window = rec_sample_window();
  ensure_rv(ctx, slot);
  std::uint64_t val = values_[var]->load(ctx);
  // If the global clock moved since our snapshot, some transaction
  // committed: value-revalidate EVERYTHING read so far (the amortized
  // Θ(|read set|) of Theorem 3), then re-read.
  while (seqlock_->load(ctx) != slot.rv) {
    if (!revalidate(ctx, slot)) return fail_op(ctx);
    val = values_[var]->load(ctx);
  }
  slot.rs.push_back({var, val});
  out = val;
  // Snapshot-only stamp: the value was current at seqlock snapshot rv (the
  // while loop above just proved it); the version identity is resolved by
  // value on the checker side.
  rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.rv + 1,
          core::kNoReadVersion);
  return true;
}

bool NorecStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  slot.ws.upsert(var, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool NorecStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  if (slot.ws.empty()) {
    // Read-only: the read set is valid at snapshot rv; serialize there.
    // Publishes nothing, so a sampling window is enough.
    const RecWindow window = rec_sample_window();
    ensure_rv(ctx, slot);
    slot.active = false;
    ++ctx.stats.commits;
    rec_commit(ctx, 2 * slot.rv + 1);
    return true;
  }

  const RecWindow window = rec_commit_window(ctx);
  ensure_rv(ctx, slot);

  // Acquire the global sequence lock at a snapshot our read set is valid
  // at; on interference revalidate and retry.
  for (;;) {
    std::uint64_t expect = slot.rv;
    if (seqlock_->cas(ctx, expect, slot.rv + 1)) break;
    if (!revalidate(ctx, slot)) {
      slot.active = false;
      ++ctx.stats.aborts;
      rec_abort_at_commit(ctx, 2 * slot.rv + 1);
      return false;
    }
  }

  // Commit point: we hold the global lock and the read set is valid.
  rec_commit(ctx, 2 * (slot.rv + 2));

  for (const WriteEntry& w : slot.ws.entries()) {
    values_[w.var]->store(ctx, w.value);
  }
  seqlock_->store(ctx, slot.rv + 2);
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void NorecStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  ensure_rv(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, 2 * slot.rv + 1);
}

}  // namespace optm::stm
