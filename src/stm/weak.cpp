#include "stm/weak.hpp"

#include <algorithm>

#include "util/spin.hpp"

namespace optm::stm {

WeakStm::WeakStm(std::size_t num_vars) : RuntimeBase(num_vars), vars_(num_vars) {}

void WeakStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.rs.clear();
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool WeakStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();
  // Stable (value, version) sample — and then NOTHING: no rv check, no
  // read-set validation. The transaction may now hold a torn snapshot.
  util::Backoff backoff;
  std::uint64_t v1 = 0;
  std::uint64_t val = 0;
  for (;;) {
    v1 = meta.lock_ver.load(ctx);
    val = meta.value.load(ctx);
    if (!locked(v1) && meta.lock_ver.load(ctx) == v1) break;
    backoff.pause();
  }
  slot.rs.push_back({var, version_of(v1)});
  out = val;
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool WeakStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  slot.ws.upsert(var, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool WeakStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  const RecWindow window = rec_commit_window(ctx);

  auto finish_abort = [&] {
    slot.active = false;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx);
    return false;
  };

  // Commit-time validation only (keeps COMMITTED transactions strictly
  // serializable; does nothing for the live ones).
  struct Locked {
    VarId var;
    std::uint64_t value;
    std::uint64_t version;
  };
  std::vector<Locked> order;
  order.reserve(slot.ws.size());
  for (const WriteEntry& w : slot.ws.entries()) order.push_back({w.var, w.value, 0});
  std::sort(order.begin(), order.end(),
            [](const Locked& a, const Locked& b) { return a.var < b.var; });

  auto release = [&](std::size_t upto) {
    for (std::size_t i = 0; i < upto; ++i) {
      vars_[order[i].var]->lock_ver.store(ctx, pack(order[i].version));
    }
  };

  for (std::size_t i = 0; i < order.size(); ++i) {
    VarMeta& meta = *vars_[order[i].var];
    util::Backoff backoff;
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::uint64_t vl = meta.lock_ver.load(ctx);
      if (!locked(vl)) {
        order[i].version = version_of(vl);
        if (meta.lock_ver.cas(ctx, vl, vl | kLockedBit)) break;
      }
      if (attempt >= 32) {
        release(i);
        return finish_abort();
      }
      backoff.pause();
    }
  }

  {
    const std::uint64_t before = ctx.steps.total();
    for (const ReadEntry& r : slot.rs) {
      const std::uint64_t vl = vars_[r.var]->lock_ver.load(ctx);
      const bool locked_by_me = slot.ws.find(r.var) != nullptr;
      const std::uint64_t current =
          locked_by_me ? version_of(vl & ~kLockedBit) : version_of(vl);
      if ((locked(vl) && !locked_by_me) || current != r.version) {
        ctx.stats.validation_steps += ctx.steps.total() - before;
        release(order.size());
        return finish_abort();
      }
    }
    ctx.stats.validation_steps += ctx.steps.total() - before;
  }

  rec_commit(ctx);  // commit point: validated while holding the locks

  for (const Locked& l : order) {
    VarMeta& meta = *vars_[l.var];
    meta.value.store(ctx, l.value);
    meta.lock_ver.store(ctx, pack(l.version + 1));
  }
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void WeakStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx);
}

}  // namespace optm::stm
