// Shared machinery for the STM runtimes: per-process transaction slots,
// read/write sets, statistics and recorder plumbing.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "stm/api.hpp"
#include "stm/recorder.hpp"
#include "util/cache.hpp"

namespace optm::stm {

struct ReadEntry {
  VarId var;
  std::uint64_t version;
};

struct WriteEntry {
  VarId var;
  std::uint64_t value;
};

/// Write-set with linear lookup — transactions touch few variables, and a
/// flat vector beats a hash map at these sizes by a wide margin.
class WriteSet {
 public:
  void clear() noexcept { entries_.clear(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<WriteEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::vector<WriteEntry>& entries() noexcept { return entries_; }

  [[nodiscard]] const WriteEntry* find(VarId var) const noexcept {
    for (const auto& e : entries_)
      if (e.var == var) return &e;
    return nullptr;
  }

  void upsert(VarId var, std::uint64_t value) {
    for (auto& e : entries_) {
      if (e.var == var) {
        e.value = value;
        return;
      }
    }
    entries_.push_back({var, value});
  }

 private:
  std::vector<WriteEntry> entries_;
};

/// Base class handling recorder hooks and per-slot transaction ids.
///
/// Recording protocol (matching the paper's event model):
///   begin        -> fresh TxId
///   read/write   -> inv before any shared access, ret after the value is
///                   decided, or A instead of ret when the op dooms the tx
///   commit       -> tryC, then C (after the commit point) or A
///   abort (tryA) -> tryA, A
class RuntimeBase : public Stm {
 public:
  explicit RuntimeBase(std::size_t num_vars) noexcept : num_vars_(num_vars) {}

  [[nodiscard]] std::size_t num_vars() const noexcept override { return num_vars_; }

  void set_recorder(RecorderBase* recorder) noexcept override {
    recorder_ = recorder;
    // Cache the engine's window lock (when it has one) so every window on
    // the recorded hot path is two inlined RMWs, not two virtual calls
    // wrapping them. The mutex engine returns nullptr and keeps the
    // virtual path.
    window_lock_ = recorder != nullptr ? recorder->window_lock() : nullptr;
    // Devirtualize the per-event hooks for the sharded engine: Recorder is
    // final and header-defined, so calls through a concrete pointer inline
    // the whole push (stamp draw + slot store) into the runtime's op.
    sharded_ = dynamic_cast<Recorder*>(recorder);
  }

  bool set_window_free(bool on) noexcept override {
    window_free_ = on && window_free_supported_;
    return window_free_ == on;
  }
  [[nodiscard]] bool window_free() const noexcept override {
    return window_free_;
  }

 protected:
  /// An out-of-range VarId is a caller bug; fail loudly instead of indexing
  /// past the metadata vector (a silently corrupted lock word spins forever,
  /// which is how this class of bug actually manifests).
  void bounds_check(VarId var) const {
    if (var >= num_vars_) {
      throw std::out_of_range("optm: VarId " + std::to_string(var) +
                              " out of range (num_vars = " +
                              std::to_string(num_vars_) + ")");
    }
  }

  /// Scoped recorder window (see recorder.hpp): while held, the runtime's
  /// shared-memory action and its recorded event are atomic with respect to
  /// every recorded commit point. Sampling windows (value sampling of a
  /// read, the C record of a read-only transaction) may overlap each other;
  /// commit windows (update commit points, in-place mutation of committed
  /// state) are exclusive against every window. No-op when no recorder is
  /// attached — and in window-free mode, where the stamps the runtime
  /// emits replace the window discipline entirely (the commit "window"
  /// shrinks to the recording instant of the C event itself).
  ///
  /// When the engine exposes its SharedSpinLock (the sharded Recorder),
  /// the window takes it directly — the inlined fast path of the recorded
  /// hot loop; otherwise it falls back to the virtual
  /// window_enter/window_exit pair (the mutex engine).
  class [[nodiscard]] RecWindow {
   public:
    RecWindow() = default;
    RecWindow(RecorderBase* recorder, util::SharedSpinLock* lock,
              RecorderBase::WindowKind kind)
        : recorder_(recorder), lock_(lock), kind_(kind) {
      if (lock_ != nullptr) {
        if (kind_ == RecorderBase::WindowKind::kCommit) {
          lock_->lock();
        } else {
          lock_->lock_shared();
        }
      } else if (recorder_ != nullptr) {
        recorder_->window_enter(kind_);
      }
    }
    RecWindow(RecWindow&& other) noexcept
        : recorder_(other.recorder_), lock_(other.lock_), kind_(other.kind_) {
      other.recorder_ = nullptr;
      other.lock_ = nullptr;
    }
    RecWindow(const RecWindow&) = delete;
    RecWindow& operator=(const RecWindow&) = delete;
    RecWindow& operator=(RecWindow&&) = delete;
    ~RecWindow() {
      if (lock_ != nullptr) {
        if (kind_ == RecorderBase::WindowKind::kCommit) {
          lock_->unlock();
        } else {
          lock_->unlock_shared();
        }
      } else if (recorder_ != nullptr) {
        recorder_->window_exit(kind_);
      }
    }

   private:
    RecorderBase* recorder_ = nullptr;
    util::SharedSpinLock* lock_ = nullptr;
    RecorderBase::WindowKind kind_ = RecorderBase::WindowKind::kSample;
  };

  [[nodiscard]] RecWindow rec_sample_window() const {
    if (window_free_) return RecWindow();
    return RecWindow(recorder_, window_lock_,
                     RecorderBase::WindowKind::kSample);
  }
  /// Commit windows take the calling context so the sharded engine can
  /// close the thread's open stamp batch BEFORE the exclusive window is
  /// acquired: a batch must never span a commit-window transition (see the
  /// BATCH STAMPING section in recorder.hpp). Sample windows deliberately
  /// do not flush — they may overlap each other, and the commit window's
  /// exclusivity plus the batch seqlock already order samples against
  /// commit points.
  [[nodiscard]] RecWindow rec_commit_window(sim::ThreadCtx& ctx) const {
    if (window_free_) return RecWindow();
    if (sharded_ != nullptr) sharded_->flush_lane(ctx.id());
    return RecWindow(recorder_, window_lock_,
                     RecorderBase::WindowKind::kCommit);
  }

  void rec_begin(sim::ThreadCtx& ctx) {
    if (recorder_ != nullptr) rec_tx_[ctx.id()] = recorder_->begin_tx();
  }
  void rec_inv(sim::ThreadCtx& ctx, VarId var, core::OpCode op,
               std::uint64_t arg) {
    if (sharded_ != nullptr) {
      sharded_->on_inv(ctx.id(), rec_tx_[ctx.id()], var, op,
                       static_cast<core::Value>(arg));
    } else if (recorder_ != nullptr) {
      recorder_->on_inv(ctx.id(), rec_tx_[ctx.id()], var, op,
                        static_cast<core::Value>(arg));
    }
  }
  /// `stamp`/`ver` are the read-stamp pair (2·rv+1, version read) of a
  /// stamping runtime's non-local read; 0/0 records an unstamped response
  /// (local reads, writes, non-stamping runtimes). See Event::stamp/ver.
  void rec_ret(sim::ThreadCtx& ctx, VarId var, core::OpCode op,
               std::uint64_t arg, std::uint64_t ret, std::uint64_t stamp = 0,
               std::uint64_t ver = 0) {
    if (sharded_ != nullptr) {
      sharded_->on_ret(ctx.id(), rec_tx_[ctx.id()], var, op,
                       static_cast<core::Value>(arg),
                       static_cast<core::Value>(ret), stamp, ver);
    } else if (recorder_ != nullptr) {
      recorder_->on_ret(ctx.id(), rec_tx_[ctx.id()], var, op,
                        static_cast<core::Value>(arg),
                        static_cast<core::Value>(ret), stamp, ver);
    }
  }
  // Abort hooks take the aborted transaction's serialization stamp (see
  // RecorderBase::on_abort): clock-based runtimes pass 2·rv+1, record-order
  // runtimes leave the default 0.

  /// A replaces the pending operation response (forceful abort mid-op).
  void rec_abort_mid_op(sim::ThreadCtx& ctx, std::uint64_t stamp = 0) {
    if (recorder_ != nullptr) {
      recorder_->on_abort(ctx.id(), rec_tx_[ctx.id()], stamp);
    }
  }
  void rec_try_commit(sim::ThreadCtx& ctx) {
    if (recorder_ != nullptr) {
      recorder_->on_try_commit(ctx.id(), rec_tx_[ctx.id()]);
    }
  }
  void rec_commit(sim::ThreadCtx& ctx, std::uint64_t stamp = 0) {
    if (recorder_ != nullptr) {
      recorder_->on_commit(ctx.id(), rec_tx_[ctx.id()], stamp);
    }
  }
  /// A answering tryC (commit failed).
  void rec_abort_at_commit(sim::ThreadCtx& ctx, std::uint64_t stamp = 0) {
    if (recorder_ != nullptr) {
      recorder_->on_abort(ctx.id(), rec_tx_[ctx.id()], stamp);
    }
  }
  void rec_voluntary_abort(sim::ThreadCtx& ctx, std::uint64_t stamp = 0) {
    if (recorder_ != nullptr) {
      recorder_->on_try_abort(ctx.id(), rec_tx_[ctx.id()]);
      recorder_->on_abort(ctx.id(), rec_tx_[ctx.id()], stamp);
    }
  }

  std::size_t num_vars_;
  RecorderBase* recorder_ = nullptr;
  /// Cached RecorderBase::window_lock() of the attached engine (nullptr
  /// when the engine keeps the virtual window path).
  util::SharedSpinLock* window_lock_ = nullptr;
  /// recorder_ downcast to the final sharded engine (nullptr otherwise):
  /// the devirtualized fast path of the per-event hooks.
  Recorder* sharded_ = nullptr;
  /// Set (in the constructor) by runtimes that stamp every non-local read
  /// with its (rv, version) pair — clock-validated (tl2/tiny/norec/mv) or
  /// orec-published (dstm/astm) — the precondition for dropping windows.
  bool window_free_supported_ = false;

 private:
  bool window_free_ = false;
  std::array<core::TxId, sim::kMaxThreads> rec_tx_{};
};

}  // namespace optm::stm
