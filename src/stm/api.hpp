// The common software-TM interface.
//
// Design notes:
//  * One live transaction per process (ThreadCtx), matching the paper's
//    model (§6.1: "each transaction is executed by a single process, and
//    each process executes transactions sequentially"). All transaction
//    state is keyed on ctx.id(), never on thread-local storage, so tests
//    can drive several logical processes from one OS thread and construct
//    exact interleavings deterministically.
//  * Word-based: shared objects are VarIds mapping to 64-bit values. The
//    typed TVar<T> façade and the semantic counter object live in tvar.hpp.
//  * Failure is reported by return value: read/write/commit return false
//    once the transaction is doomed; the transaction is then already
//    aborted and the caller must call begin() again (the atomically()
//    helper wraps this retry loop).
//  * properties() declares the §6 design-space coordinates of each
//    implementation — single-version? invisible reads? progressive? — the
//    exact premises of Theorem 3.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/thread_ctx.hpp"

namespace optm::stm {

using VarId = std::uint32_t;

/// §6's TM design-space coordinates (the premises of Theorem 3).
struct StmProperties {
  std::string_view name;
  bool invisible_reads = false;  // reads write no base shared object
  bool single_version = false;   // only latest committed state stored
  bool progressive = false;      // aborts only on conflict with live tx
  bool opaque = true;            // ensures opacity (WeakStm does not)
};

class RecorderBase;  // stm/recorder.hpp

class Stm {
 public:
  virtual ~Stm() = default;

  [[nodiscard]] virtual StmProperties properties() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_vars() const noexcept = 0;

  /// Start a transaction for this process. Any previous transaction of the
  /// same process must be completed.
  virtual void begin(sim::ThreadCtx& ctx) = 0;

  /// Transactional read. Returns false iff the transaction aborted (the
  /// paper's "abort event instead of an operation response").
  [[nodiscard]] virtual bool read(sim::ThreadCtx& ctx, VarId var,
                                  std::uint64_t& out) = 0;

  /// Transactional write (buffered or eager per algorithm). Returns false
  /// iff the transaction aborted.
  [[nodiscard]] virtual bool write(sim::ThreadCtx& ctx, VarId var,
                                   std::uint64_t value) = 0;

  /// tryC: returns true on commit, false on abort.
  [[nodiscard]] virtual bool commit(sim::ThreadCtx& ctx) = 0;

  /// tryA: voluntary abort; always succeeds.
  virtual void abort(sim::ThreadCtx& ctx) = 0;

  /// Attach a history recorder (nullptr to detach). Not thread-safe;
  /// attach before spawning workers.
  virtual void set_recorder(RecorderBase* recorder) noexcept = 0;

  /// Request window-free recording: the runtime stops taking the
  /// recorder's sampling/commit windows and instead stamps every non-local
  /// read with its (rv, version) pair, so a stamp-space certificate policy
  /// (core::VersionOrderPolicy::kStampedRead) can verify the recording
  /// without any shared window lock. Honored by the clock runtimes (tl2,
  /// tiny, norec — reads O(1)-validated against a snapshot they can name),
  /// the orec runtimes (dstm, astm — validation snapshots published
  /// through the CAS-acquired ownership records, see stm/dstm.hpp), and
  /// mv (snapshot reads; update commits ticket before validating); the
  /// others stay windowed. Returns whether the requested mode is now
  /// active. Not thread-safe; set before spawning workers.
  virtual bool set_window_free(bool on) noexcept { return !on; }

  /// Is window-free recording currently active?
  [[nodiscard]] virtual bool window_free() const noexcept { return false; }
};

/// Thrown by the TxHandle façade when an operation returns false; caught by
/// atomically() to drive the retry loop.
struct TxAborted {};

/// Convenience façade for writing transaction bodies in direct style.
class TxHandle {
 public:
  TxHandle(Stm& stm, sim::ThreadCtx& ctx) noexcept : stm_(&stm), ctx_(&ctx) {}

  [[nodiscard]] std::uint64_t read(VarId var) {
    std::uint64_t v = 0;
    if (!stm_->read(*ctx_, var, v)) throw TxAborted{};
    return v;
  }
  void write(VarId var, std::uint64_t v) {
    if (!stm_->write(*ctx_, var, v)) throw TxAborted{};
  }
  /// Voluntary abort (tryA): unwinds out of the transaction body.
  [[noreturn]] void retry() {
    stm_->abort(*ctx_);
    throw TxAborted{};
  }

 private:
  Stm* stm_;
  sim::ThreadCtx* ctx_;
};

/// Execute `body` as a transaction, retrying on abort. Returns the number
/// of attempts (>= 1), or 0 if `max_attempts` was exhausted.
template <typename Body>
std::uint64_t atomically(Stm& stm, sim::ThreadCtx& ctx, Body&& body,
                         std::uint64_t max_attempts = 0) {
  for (std::uint64_t attempt = 1; max_attempts == 0 || attempt <= max_attempts;
       ++attempt) {
    stm.begin(ctx);
    try {
      TxHandle tx(stm, ctx);
      body(tx);
    } catch (const TxAborted&) {
      continue;
    }
    if (stm.commit(ctx)) return attempt;
  }
  return 0;
}

}  // namespace optm::stm
