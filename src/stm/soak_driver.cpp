#include "stm/soak_driver.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel_verify.hpp"
#include "stm/factory.hpp"
#include "workload/workloads.hpp"

namespace optm::stm {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double events_per_sec(std::size_t events, Clock::time_point t0,
                                    Clock::time_point t1) {
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return secs > 0 ? static_cast<double>(events) / secs : 0.0;
}

}  // namespace

SoakDriver::SoakDriver(SoakOptions options) : options_(std::move(options)) {}

SoakResult SoakDriver::run() {
  const SoakOptions& o = options_;
  auto stm = make_stm(o.run.stm, o.vars);  // throws on an unknown name
  if (o.run.window_free && !stm->set_window_free(true)) {
    throw std::invalid_argument(o.run.stm +
                                " does not support window-free recording "
                                "(use tl2, tiny, norec, dstm, astm or mv)");
  }
  Recorder recorder(o.vars, Recorder::Options{o.run.stamp_batch});
  stm->set_recorder(&recorder);

  // ~2 events per op (inv+ret) plus lifecycle events per transaction;
  // sized low (aborted transactions record fewer events) so the run
  // clears the target rather than undershooting it.
  const std::uint64_t events_per_tx = 2ull * o.ops_per_tx;
  wl::MixParams mix;
  mix.threads = o.threads;
  mix.vars = o.vars;
  mix.ops_per_tx = o.ops_per_tx;
  mix.seed = o.seed;
  mix.txs_per_thread =
      o.target_events / (static_cast<std::uint64_t>(o.threads) * events_per_tx) +
      1;

  SoakResult result;
  result.stm = o.run.stm;
  result.window_mode = stm->window_free() ? "window-free" : "windowed";
  result.policy = o.run.policy;

  // The sink chain: live certification engine and/or the caller's extra
  // sink (a log writer, usually), fanned out by a tee when both are
  // present. live_stream_threads > 1 swaps the serial monitor for the
  // parallel streaming certifier — same verdict, same flag position, but
  // the certification keeps up with more producer cores.
  const bool want_parallel =
      o.live_monitor && o.live_stream_threads > 1 &&
      o.run.policy != core::VersionOrderPolicy::kBlindWriteSmart;
  core::OnlineCertificateMonitor monitor(recorder.model(), o.run.policy);
  std::unique_ptr<core::ParallelStreamCertifier> certifier;
  if (want_parallel) {
    core::ParallelStreamCertifier::Options popts;
    popts.num_threads = o.live_stream_threads;
    certifier = std::make_unique<core::ParallelStreamCertifier>(
        recorder.model(), o.run.policy, popts);
  }
  if (o.live_monitor) {
    // Versions are one per write response: ~a quarter of the events at
    // the mix's default write ratio (the table grows geometrically past
    // it).
    const std::size_t reserve_txs = mix.txs_per_thread * o.threads + 16;
    const std::size_t reserve_versions = o.target_events / 3 + o.vars + 16;
    if (certifier) {
      certifier->reserve(reserve_txs, reserve_versions);
    } else {
      monitor.reserve(reserve_txs, reserve_versions);
    }
  }
  MonitorSink monitor_sink(monitor);
  std::unique_ptr<ParallelMonitorSink> certifier_sink;
  if (certifier) certifier_sink = std::make_unique<ParallelMonitorSink>(*certifier);
  EventSink* live_sink =
      certifier ? static_cast<EventSink*>(certifier_sink.get())
                : static_cast<EventSink*>(&monitor_sink);
  NullSink null_sink;
  TeeSink tee;
  EventSink* sink = &null_sink;
  if (o.live_monitor && o.extra_sink != nullptr) {
    tee.add(live_sink).add(o.extra_sink);
    sink = &tee;
  } else if (o.live_monitor) {
    sink = live_sink;
  } else if (o.extra_sink != nullptr) {
    sink = o.extra_sink;
  }

  // Record + drain: the producers run the mix while one verifier thread
  // pumps drained batches into the sink chain.
  std::atomic<bool> done{false};
  DrainPump pump(recorder, *sink, o.pacing);
  DrainPump::Stats pump_stats;
  const auto record_t0 = Clock::now();
  std::thread verifier([&] { pump_stats = pump.run(done); });
  (void)wl::run_random_mix(*stm, mix);
  done.store(true, std::memory_order_release);
  verifier.join();
  const auto record_t1 = Clock::now();

  result.recorded_events = recorder.num_events();
  result.live_batches = pump_stats.batches;
  result.live_events_per_sec =
      events_per_sec(result.recorded_events, record_t0, record_t1);
  result.sink_ok = pump_stats.sink_ok;
  if (o.live_monitor) {
    if (certifier) {
      // The pump's sink finish() already ran the final merge barrier.
      result.live_ok = certifier->ok();
      result.live_violation = certifier->violation();
      result.live_parallel = !certifier->serial_fallback();
      result.live_threads_used = certifier->threads_used();
      result.live_shards_used = certifier->shards_used();
    } else {
      result.live_ok = monitor.ok();
      result.live_violation = monitor.violation();
    }
  }

  // Offline: the sharded parallel driver over the complete history.
  if (o.offline_verify) {
    const core::History h = recorder.history();
    core::ShardVerifyOptions sharded;
    sharded.num_shards = o.shards;
    sharded.policy = o.run.policy;
    const auto offline_t0 = Clock::now();
    const auto offline = core::verify_history_sharded(h, sharded);
    const auto offline_t1 = Clock::now();
    result.offline_ran = true;
    result.offline_ok = offline.certified;
    result.offline_violation = offline.violation;
    result.offline_events_per_sec =
        events_per_sec(offline.events, offline_t0, offline_t1);
    result.offline_shards = offline.shards_used;
  }
  return result;
}

}  // namespace optm::stm
