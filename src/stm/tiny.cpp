#include "stm/tiny.hpp"

#include "util/spin.hpp"

namespace optm::stm {

TinyStm::TinyStm(std::size_t num_vars) : RuntimeBase(num_vars), vars_(num_vars) {
  // Reads validate (or extend) against a named snapshot rv and are stamped
  // with their (rv, version) pair, so the recorder windows are droppable.
  window_free_supported_ = true;
}

void TinyStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.rv_sampled = false;
  slot.rv = 0;
  slot.rs.clear();
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool TinyStm::extend(sim::ThreadCtx& ctx, Slot& slot, std::uint64_t target) {
  const std::uint64_t before = ctx.steps.total();
  bool ok = true;
  for (const ReadEntry& r : slot.rs) {
    const std::uint64_t vl = vars_[r.var]->lock_ver.load(ctx);
    const bool ours = locked(vl) && version_of(vl) == ctx.id() + 1;
    if (ours) continue;  // we hold the lock: still our recorded version
    if (locked(vl) || version_of(vl) != r.version) {
      ok = false;  // overwritten (or being overwritten) by a rival
      break;
    }
  }
  ctx.stats.validation_steps += ctx.steps.total() - before;
  if (ok) {
    slot.rv = target;
    ++slot.extensions;
  }
  return ok;
}

void TinyStm::release_locks(sim::ThreadCtx& ctx, Slot& slot, bool write_back,
                            std::uint64_t new_version) {
  for (const LockedEntry& e : slot.ws) {
    VarMeta& meta = *vars_[e.var];
    if (write_back) {
      meta.value.store(ctx, e.value);
      meta.lock_ver.store(ctx, pack_version(new_version));
    } else {
      meta.lock_ver.store(ctx, pack_version(e.old_version));
    }
  }
  slot.ws.clear();
}

bool TinyStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  release_locks(ctx, slot, /*write_back=*/false, 0);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, 2 * slot.rv + 1);  // serialize at the snapshot
  return false;
}

bool TinyStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const LockedEntry* own = find_locked(slot, var)) {
    out = own->value;  // read-own-write from the buffered update
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();
  ensure_rv(ctx, slot);
  for (;;) {
    const std::uint64_t v1 = meta.lock_ver.load(ctx);
    const std::uint64_t val = meta.value.load(ctx);
    const std::uint64_t v2 = meta.lock_ver.load(ctx);
    if (v1 != v2 || locked(v1)) {
      return fail_op(ctx);  // rival holds the lock: suicide (live conflict)
    }
    if (version_of(v1) > slot.rv) {
      // TL2 would abort here. Extension: if nothing read so far was
      // overwritten, the snapshot slides forward and the read proceeds —
      // Θ(|read set|) steps, the Theorem 3 price of staying progressive.
      if (!extend(ctx, slot, clock_.read(ctx))) return fail_op(ctx);
      // Re-sample: a rival may have overwritten this variable between the
      // sample above and extend()'s clock read, making (v1, val) stale
      // against the slid snapshot. (The windowed recorder's sampling
      // window used to exclude that interleaving; window-free, the
      // re-sample is what keeps the read — and its stamp — truthful.)
      continue;
    }
    slot.rs.push_back({var, version_of(v1)});
    out = val;
    // Stamp with the (possibly just-extended) snapshot: version_of(v1) <=
    // slot.rv holds for the value just re-sampled.
    rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.rv + 1,
            version_of(v1));
    return true;
  }
}

bool TinyStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  for (LockedEntry& e : slot.ws) {
    if (e.var == var) {
      e.value = value;  // already encounter-locked: update the buffer
      rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
      return true;
    }
  }

  VarMeta& meta = *vars_[var];
  // Encounter-time locking mutates the lock word only (no committed value
  // is published), so sampling-grade atomicity suffices for the record.
  const RecWindow window = rec_sample_window();
  ensure_rv(ctx, slot);
  std::uint64_t vl = meta.lock_ver.load(ctx);
  if (locked(vl)) return fail_op(ctx);  // suicide against the live holder
  if (version_of(vl) > slot.rv) {
    // Writing a variable that moved past our snapshot: extend or die —
    // otherwise the commit-time validation could never succeed anyway.
    if (!extend(ctx, slot, clock_.read(ctx))) return fail_op(ctx);
    if (version_of(vl) > slot.rv) return fail_op(ctx);
  }
  if (!meta.lock_ver.cas(ctx, vl, pack_owner(ctx.id()))) {
    return fail_op(ctx);  // lost the race to another writer
  }
  slot.ws.push_back({var, value, version_of(vl)});
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool TinyStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  if (slot.ws.empty()) {
    // Read-only: the read set is valid at rv; serialize there. Publishes
    // nothing, so a sampling window is enough.
    const RecWindow window = rec_sample_window();
    ensure_rv(ctx, slot);
    slot.active = false;
    ++ctx.stats.commits;
    rec_commit(ctx, 2 * slot.rv + 1);
    return true;
  }

  const RecWindow window = rec_commit_window(ctx);
  ensure_rv(ctx, slot);

  const std::uint64_t wv = clock_.advance(ctx);
  // If a rival committed between rv and wv - 1, the read set must still be
  // current (the locked write set cannot have changed under us).
  if (wv != slot.rv + 1 && !extend(ctx, slot, wv - 1)) {
    release_locks(ctx, slot, /*write_back=*/false, 0);
    slot.active = false;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx, 2 * slot.rv + 1);
    return false;
  }

  rec_commit(ctx, 2 * wv);  // commit point: validated while holding locks
  release_locks(ctx, slot, /*write_back=*/true, wv);
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void TinyStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  ensure_rv(ctx, slot);
  release_locks(ctx, slot, /*write_back=*/false, 0);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, 2 * slot.rv + 1);
}

}  // namespace optm::stm
