#include "stm/twopl.hpp"

#include <algorithm>

#include "util/spin.hpp"

namespace optm::stm {

TwoPlStm::TwoPlStm(std::size_t num_vars, WaitPolicy wait)
    : RuntimeBase(num_vars), vars_(num_vars), wait_(wait) {}

void TwoPlStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.ts = ts_source_.advance(ctx);
  slot.read_locked.clear();
  slot.write_locked.clear();
  slot.ws.clear();
  prio_[ctx.id()]->store(ctx, slot.ts);
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool TwoPlStm::holds_read(const Slot& slot, VarId var) const noexcept {
  return std::find(slot.read_locked.begin(), slot.read_locked.end(), var) !=
         slot.read_locked.end();
}

bool TwoPlStm::holds_write(const Slot& slot, VarId var) const noexcept {
  return std::find(slot.write_locked.begin(), slot.write_locked.end(), var) !=
         slot.write_locked.end();
}

bool TwoPlStm::may_wait_for(sim::ThreadCtx& ctx, const Slot& slot,
                            std::uint32_t holder) {
  if (wait_ == WaitPolicy::kNoWait) return false;
  // Wait-die: the older requester waits, the younger dies. The holder's
  // priority read can be stale (holder turnover); a stale comparison can
  // only cause a spurious die or a wait that resolves — see header.
  return slot.ts < prio_[holder]->load(ctx);
}

bool TwoPlStm::lock_read(sim::ThreadCtx& ctx, Slot& slot, VarId var) {
  VarMeta& meta = *vars_[var];
  const std::uint64_t me = bit_of(ctx.id());
  util::Backoff backoff;
  for (;;) {
    (void)meta.readers.fetch_or(ctx, me);  // announce intent (visible read)
    const std::uint64_t w = meta.writer.load(ctx);
    if (w == 0 || w == ctx.id() + 1) {
      slot.read_locked.push_back(var);
      return true;  // bit set, no foreign writer: shared lock held
    }
    // Foreign writer: retreat (the bit must not look like a held lock
    // while we wait — the writer's drain loop cannot tell a waiter from a
    // holder) and arbitrate.
    (void)meta.readers.fetch_and(ctx, ~me);
    if (!may_wait_for(ctx, slot, static_cast<std::uint32_t>(w - 1))) {
      return false;  // die
    }
    backoff.pause();
  }
}

bool TwoPlStm::lock_write(sim::ThreadCtx& ctx, Slot& slot, VarId var) {
  VarMeta& meta = *vars_[var];
  const std::uint64_t me_word = ctx.id() + 1;
  util::Backoff backoff;

  // Phase 1: claim the writer word.
  for (;;) {
    std::uint64_t w = meta.writer.load(ctx);
    if (w == me_word) break;  // already ours
    if (w == 0) {
      if (meta.writer.cas(ctx, w, me_word)) break;
      continue;
    }
    if (!may_wait_for(ctx, slot, static_cast<std::uint32_t>(w - 1))) {
      return false;  // die against a live rival writer
    }
    backoff.pause();
  }

  // Phase 2: drain foreign readers (our own shared lock upgrades in place).
  const std::uint64_t own_bit = bit_of(ctx.id());
  for (;;) {
    const std::uint64_t readers = meta.readers.load(ctx) & ~own_bit;
    if (readers == 0) break;
    // Arbitrate against the oldest visible holder; if we may not wait for
    // it, release the claim and die. (A transient waiter's bit clears by
    // itself; a genuine holder's bit clears at its completion.)
    bool wait_ok = true;
    for (std::uint32_t s = 0; s < sim::kMaxThreads; ++s) {
      if ((readers & bit_of(s)) != 0 && !may_wait_for(ctx, slot, s)) {
        wait_ok = false;
        break;
      }
    }
    if (!wait_ok) {
      std::uint64_t expect = me_word;
      (void)meta.writer.cas(ctx, expect, 0);
      return false;
    }
    backoff.pause();
  }

  slot.write_locked.push_back(var);
  return true;
}

void TwoPlStm::release_all(sim::ThreadCtx& ctx, Slot& slot) {
  for (const VarId var : slot.write_locked) {
    std::uint64_t expect = ctx.id() + 1;
    (void)vars_[var]->writer.cas(ctx, expect, 0);
  }
  const std::uint64_t me = bit_of(ctx.id());
  for (const VarId var : slot.read_locked) {
    (void)vars_[var]->readers.fetch_and(ctx, ~me);
  }
  slot.read_locked.clear();
  slot.write_locked.clear();
}

bool TwoPlStm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  release_all(ctx, slot);
  slot.ws.clear();
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx);
  return false;
}

bool TwoPlStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  if (!holds_read(slot, var) && !holds_write(slot, var)) {
    // Lock acquisition spins OUTSIDE any recorder window: a holder must be
    // able to reach its own window to complete and release.
    if (!lock_read(ctx, slot, var)) return fail_op(ctx);
  }

  const RecWindow window = rec_sample_window();
  out = vars_[var]->value.load(ctx);  // stable: shared lock held
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool TwoPlStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);

  if (!holds_write(slot, var)) {
    if (!lock_write(ctx, slot, var)) return fail_op(ctx);
  }
  slot.ws.upsert(var, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool TwoPlStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  // Strict 2PL commits cannot fail: every touched variable is locked, so
  // no validation exists to fail. Install the buffered writes and release.
  {
    const RecWindow window = rec_commit_window(ctx);
    for (const WriteEntry& e : slot.ws.entries()) {
      vars_[e.var]->value.store(ctx, e.value);
    }
    rec_commit(ctx);
  }
  release_all(ctx, slot);
  slot.ws.clear();
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void TwoPlStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  release_all(ctx, slot);
  slot.ws.clear();
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx);
}

}  // namespace optm::stm
