// Typed transactional variables and semantic transactional objects.
//
// TVar<T> is a thin, zero-overhead view of one STM variable for any T that
// round-trips through 64 bits (integers, enums, small structs via
// std::bit_cast). TCounter implements the §3.4 semantic counter: its
// increment is write-only and commutative, so concurrent incrementing
// transactions need not conflict — examples/counter_demo.cpp and
// bench/bench_counter_semantics contrast it with the read-modify-write
// register encoding, which serializes all increments.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>

#include "stm/api.hpp"
#include "util/cache.hpp"

namespace optm::stm {

template <typename T>
concept WordSized =
    std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(std::uint64_t);

template <WordSized T>
class TVar {
 public:
  constexpr TVar(VarId var = 0) noexcept : var_(var) {}

  [[nodiscard]] T read(TxHandle& tx) const { return decode(tx.read(var_)); }
  void write(TxHandle& tx, T value) const { tx.write(var_, encode(value)); }

  [[nodiscard]] constexpr VarId id() const noexcept { return var_; }

 private:
  [[nodiscard]] static std::uint64_t encode(T value) noexcept {
    if constexpr (sizeof(T) == sizeof(std::uint64_t)) {
      return std::bit_cast<std::uint64_t>(value);
    } else {
      std::uint64_t word = 0;
      __builtin_memcpy(&word, &value, sizeof(T));
      return word;
    }
  }
  [[nodiscard]] static T decode(std::uint64_t word) noexcept {
    if constexpr (sizeof(T) == sizeof(std::uint64_t)) {
      return std::bit_cast<T>(word);
    } else {
      T value{};
      __builtin_memcpy(&value, &word, sizeof(T));
      return value;
    }
  }

  VarId var_;
};

/// §3.4's semantic counter. A transaction's increments are buffered as a
/// local delta and folded into the shared cell only at commit time through
/// an atomic fetch-add — a commutative, write-only "operation" that never
/// forces transactions to conflict. The price of bypassing the STM's
/// conflict detection is that a DELTA may be applied although the enclosing
/// transaction later aborts — so apply_deltas must be called only after a
/// successful commit (the atomically_with_counter helper enforces this).
///
/// Contrast: register_increment() implements the same "increment" as a
/// read-modify-write of an ordinary TVar, which §3.4 shows admits only one
/// committed incrementer per value.
class TCounter {
 public:
  TCounter() = default;

  /// Commutative increment: buffer locally, no shared access, no conflict.
  void inc(sim::ThreadCtx& ctx, std::int64_t delta = 1) noexcept {
    pending_[ctx.id()].value += delta;
  }

  /// Fold this process's buffered delta into the shared counter. Call after
  /// (and only after) the surrounding transaction committed.
  void apply_deltas(sim::ThreadCtx& ctx) noexcept {
    auto& pending = pending_[ctx.id()].value;
    if (pending != 0) {
      total_.fetch_add(pending, std::memory_order_acq_rel);
      pending = 0;
    }
  }

  /// Discard this process's buffered delta (the transaction aborted).
  void discard(sim::ThreadCtx& ctx) noexcept { pending_[ctx.id()].value = 0; }

  [[nodiscard]] std::int64_t value() const noexcept {
    return total_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> total_{0};
  std::array<util::Padded<std::int64_t>, sim::kMaxThreads> pending_{};
};

/// Run `body` transactionally; on commit, fold the counter deltas in; on
/// abort, discard them and retry. Returns attempts (like atomically()).
template <typename Body>
std::uint64_t atomically_with_counter(Stm& stm, sim::ThreadCtx& ctx,
                                      TCounter& counter, Body&& body,
                                      std::uint64_t max_attempts = 0) {
  for (std::uint64_t attempt = 1; max_attempts == 0 || attempt <= max_attempts;
       ++attempt) {
    stm.begin(ctx);
    try {
      TxHandle tx(stm, ctx);
      body(tx, counter);
    } catch (const TxAborted&) {
      counter.discard(ctx);
      continue;
    }
    if (stm.commit(ctx)) {
      counter.apply_deltas(ctx);
      return attempt;
    }
    counter.discard(ctx);
  }
  return 0;
}

/// The read-modify-write encoding of "increment" from §3.4: read x, write
/// x+1. Throws TxAborted if the transaction dies mid-way.
inline void register_increment(TxHandle& tx, VarId var) {
  tx.write(var, tx.read(var) + 1);
}

}  // namespace optm::stm
