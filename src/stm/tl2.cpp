#include "stm/tl2.hpp"

#include <algorithm>

#include "util/spin.hpp"

namespace optm::stm {

Tl2Stm::Tl2Stm(std::size_t num_vars) : RuntimeBase(num_vars), vars_(num_vars) {
  // Every non-local read is O(1)-validated against rv and stamped with its
  // (rv, version) pair below, so the recorder windows are droppable.
  window_free_supported_ = true;
}

void Tl2Stm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = true;
  slot.rv_sampled = false;
  slot.rv = 0;
  slot.rs.clear();
  slot.ws.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool Tl2Stm::fail_op(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  slot.active = false;
  ++ctx.stats.aborts;
  rec_abort_mid_op(ctx, 2 * slot.rv + 1);  // serialize at the snapshot
  return false;
}

bool Tl2Stm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);

  if (const WriteEntry* own = slot.ws.find(var)) {
    out = own->value;  // read-own-write from the process-local buffer
    rec_ret(ctx, var, core::OpCode::kRead, 0, out);
    return true;
  }

  VarMeta& meta = *vars_[var];
  const RecWindow window = rec_sample_window();  // sampling atomic with record
  ensure_rv(ctx, slot);
  const std::uint64_t v1 = meta.lock_ver.load(ctx);
  const std::uint64_t val = meta.value.load(ctx);
  const std::uint64_t v2 = meta.lock_ver.load(ctx);
  // O(1) validation against rv: stale version => abort, regardless of
  // whether the writer is still live (the non-progressive abort).
  if (v1 != v2 || locked(v1) || version_of(v1) > slot.rv) {
    return fail_op(ctx);
  }
  slot.rs.push_back({var, version_of(v1)});
  out = val;
  // The read-stamp pair: the version read was current at snapshot rv
  // (version_of(v1) <= rv just validated) — all a stamp-space certificate
  // needs, with or without the sampling window.
  rec_ret(ctx, var, core::OpCode::kRead, 0, out, 2 * slot.rv + 1,
          version_of(v1));
  return true;
}

bool Tl2Stm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  slot.ws.upsert(var, value);  // lazy: published only at commit
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool Tl2Stm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);

  // Read-only fast path: every read was already validated against rv, so
  // the transaction serializes at its last read; the commit point needs no
  // shared-memory work. (The window keeps the C record atomic with the
  // quiescent state the reads certified; see the recorder's soundness note.)
  if (slot.ws.empty()) {
    const RecWindow window = rec_sample_window();
    ensure_rv(ctx, slot);
    slot.active = false;
    ++ctx.stats.commits;
    rec_commit(ctx, 2 * slot.rv + 1);  // serialize at the snapshot time
    return true;
  }

  const RecWindow window = rec_commit_window(ctx);  // commit point atomic with record

  auto fail = [&](std::size_t locked_upto, auto& order) {
    for (std::size_t i = 0; i < locked_upto; ++i) {
      VarMeta& meta = *vars_[order[i].var];
      meta.lock_ver.store(ctx, pack(order[i].version));  // restore, unlock
    }
    slot.active = false;
    ++ctx.stats.aborts;
    rec_abort_at_commit(ctx, 2 * slot.rv + 1);
    return false;
  };

  // Lock the write set in VarId order (global order -> no deadlock). Record
  // each variable's pre-lock version for release-on-abort and validation.
  // The order scratch lives in the slot so steady-state commits reuse its
  // capacity instead of allocating.
  std::vector<Locked>& order = slot.lock_order;
  order.clear();
  order.reserve(slot.ws.size());
  for (const WriteEntry& w : slot.ws.entries()) order.push_back({w.var, w.value, 0});
  std::sort(order.begin(), order.end(),
            [](const Locked& a, const Locked& b) { return a.var < b.var; });

  for (std::size_t i = 0; i < order.size(); ++i) {
    VarMeta& meta = *vars_[order[i].var];
    util::Backoff backoff;
    for (std::uint32_t attempt = 0;; ++attempt) {
      std::uint64_t vl = meta.lock_ver.load(ctx);
      if (!locked(vl)) {
        order[i].version = version_of(vl);
        if (meta.lock_ver.cas(ctx, vl, vl | kLockedBit)) break;
      }
      if (attempt >= 32) return fail(i, order);  // bounded spinning
      backoff.pause();
    }
  }

  const std::uint64_t wv = clock_.advance(ctx);

  // Validate the read set unless nothing committed since begin.
  if (wv != slot.rv + 1) {
    for (const ReadEntry& r : slot.rs) {
      VarMeta& meta = *vars_[r.var];
      const std::uint64_t before = ctx.steps.total();
      const std::uint64_t vl = meta.lock_ver.load(ctx);
      ctx.stats.validation_steps += ctx.steps.total() - before;
      const bool locked_by_me = slot.ws.find(r.var) != nullptr;
      if ((locked(vl) && !locked_by_me) || version_of(vl) > slot.rv) {
        return fail(order.size(), order);
      }
    }
  }

  // Commit point: validation succeeded while holding every write lock.
  rec_commit(ctx, 2 * wv);

  // Write back and release with the new version.
  for (const Locked& l : order) {
    VarMeta& meta = *vars_[l.var];
    meta.value.store(ctx, l.value);
    meta.lock_ver.store(ctx, pack(wv));
  }
  slot.active = false;
  ++ctx.stats.commits;
  return true;
}

void Tl2Stm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  ensure_rv(ctx, slot);
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx, 2 * slot.rv + 1);
}

}  // namespace optm::stm
