// TinySTM/LSA-style timestamp-extension STM — the sharpest datapoint for
// Theorem 3's trade-off. Same skeleton as TL2 (global clock, per-variable
// versioned locks, invisible reads, single-version), with ONE difference:
// where TL2 answers a stale read (version > rv) with the non-progressive
// abort, this runtime attempts a SNAPSHOT EXTENSION — revalidate the whole
// read set against the current clock and, if nothing read was overwritten,
// slide rv forward and serve the read.
//
// That single change flips the §6 design-space coordinate TL2 escaped
// through: the extension aborts only when something the transaction read
// was actually overwritten by a (then-live) rival, so the implementation
// is PROGRESSIVE — and Theorem 3 therefore applies. The price is exactly
// the theorem's: the extension is Θ(|read set|), so the adversarial
// schedule (read k variables, rival commits elsewhere, read once more)
// costs Θ(k) for the final read — which then SUCCEEDS and the reader
// commits, unlike TL2's O(1) abort. bench_lower_bound shows tiny tracking
// dstm's line while tl2 stays flat.
//
// Writes use encounter-time locking (TinySTM's ETL flavour): the write
// operation CAS-acquires the versioned lock and buffers the value; commit
// advances the clock, revalidates if needed, writes back and releases.
// Conflicts against a held lock are resolved by self-abort ("suicide",
// TinySTM's default), which only fires against a live holder —
// progressiveness again.
#pragma once

#include <vector>

#include "sim/base_object.hpp"
#include "stm/runtime.hpp"
#include "util/cache.hpp"

namespace optm::stm {

class TinyStm final : public RuntimeBase {
 public:
  explicit TinyStm(std::size_t num_vars);

  [[nodiscard]] StmProperties properties() const noexcept override {
    return {.name = "tiny",
            .invisible_reads = true,
            .single_version = true,
            .progressive = true,  // extension replaces TL2's stale abort
            .opaque = true};
  }

  void begin(sim::ThreadCtx& ctx) override;
  [[nodiscard]] bool read(sim::ThreadCtx& ctx, VarId var,
                          std::uint64_t& out) override;
  [[nodiscard]] bool write(sim::ThreadCtx& ctx, VarId var,
                           std::uint64_t value) override;
  [[nodiscard]] bool commit(sim::ThreadCtx& ctx) override;
  void abort(sim::ThreadCtx& ctx) override;

  /// Successful snapshot extensions performed by this process (observable
  /// effect of the mechanism; the tests pin when it must fire).
  [[nodiscard]] std::uint64_t extensions(std::uint32_t process) const noexcept {
    return slots_[process]->extensions;
  }

 private:
  // Versioned lock encoding: bit 0 = locked; when locked, bits 63..1 hold
  // the owner slot + 1; when free, bits 63..1 hold the version.
  static constexpr std::uint64_t kLockedBit = 1;
  [[nodiscard]] static constexpr bool locked(std::uint64_t vl) noexcept {
    return (vl & kLockedBit) != 0;
  }
  [[nodiscard]] static constexpr std::uint64_t version_of(std::uint64_t vl) noexcept {
    return vl >> 1;
  }
  [[nodiscard]] static constexpr std::uint64_t pack_version(std::uint64_t v) noexcept {
    return v << 1;
  }
  [[nodiscard]] static constexpr std::uint64_t pack_owner(std::uint32_t slot) noexcept {
    return (static_cast<std::uint64_t>(slot + 1) << 1) | kLockedBit;
  }

  struct VarMeta {
    sim::BaseWord lock_ver;
    sim::BaseWord value;
  };

  struct LockedEntry {
    VarId var;
    std::uint64_t value;        // buffered new value
    std::uint64_t old_version;  // version to restore on abort
  };

  struct Slot {
    bool active = false;
    bool rv_sampled = false;  // lazy rv (see Tl2Stm::ensure_rv)
    std::uint64_t rv = 0;
    std::vector<ReadEntry> rs;
    std::vector<LockedEntry> ws;  // encounter-time locked
    std::uint64_t extensions = 0;
  };

  void ensure_rv(sim::ThreadCtx& ctx, Slot& slot) {
    if (!slot.rv_sampled) {
      slot.rv = clock_.read(ctx);
      slot.rv_sampled = true;
    }
  }

  [[nodiscard]] const LockedEntry* find_locked(const Slot& slot,
                                               VarId var) const {
    for (const auto& e : slot.ws)
      if (e.var == var) return &e;
    return nullptr;
  }

  /// Θ(|read set|): every recorded version must still be current. On
  /// success rv may be slid to `target`.
  [[nodiscard]] bool extend(sim::ThreadCtx& ctx, Slot& slot,
                            std::uint64_t target);

  void release_locks(sim::ThreadCtx& ctx, Slot& slot, bool write_back,
                     std::uint64_t new_version);

  bool fail_op(sim::ThreadCtx& ctx);

  std::vector<util::Padded<VarMeta>> vars_;
  sim::GlobalClock clock_;
  std::array<util::Padded<Slot>, sim::kMaxThreads> slots_;
};

}  // namespace optm::stm
