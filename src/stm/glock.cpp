#include "stm/glock.hpp"

#include "util/spin.hpp"

namespace optm::stm {

GlobalLockStm::GlobalLockStm(std::size_t num_vars)
    : RuntimeBase(num_vars), values_(num_vars) {}

void GlobalLockStm::begin(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  util::Backoff backoff;
  for (;;) {
    std::uint64_t expected = 0;
    if (lock_->cas(ctx, expected, ctx.id() + 1)) break;
    backoff.pause();
  }
  slot.active = true;
  slot.undo.clear();
  ++ctx.stats.begins;
  rec_begin(ctx);
}

bool GlobalLockStm::read(sim::ThreadCtx& ctx, VarId var, std::uint64_t& out) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.reads;
  rec_inv(ctx, var, core::OpCode::kRead, 0);
  const RecWindow window = rec_sample_window();
  out = values_[var]->load(ctx);  // exclusive: reads are trivially valid
  rec_ret(ctx, var, core::OpCode::kRead, 0, out);
  return true;
}

bool GlobalLockStm::write(sim::ThreadCtx& ctx, VarId var, std::uint64_t value) {
  bounds_check(var);
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  ++ctx.stats.writes;
  rec_inv(ctx, var, core::OpCode::kWrite, value);
  // In-place mutation of committed state: exclusive against samplers.
  const RecWindow window = rec_commit_window(ctx);
  // Eager in-place update with an undo log (exclusive access anyway).
  if (slot.undo.find(var) == nullptr) {
    slot.undo.upsert(var, values_[var]->load(ctx));
  }
  values_[var]->store(ctx, value);
  rec_ret(ctx, var, core::OpCode::kWrite, value, 0);
  return true;
}

bool GlobalLockStm::commit(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return false;
  rec_try_commit(ctx);
  const RecWindow window = rec_commit_window(ctx);
  rec_commit(ctx);  // commit point: still holding the global lock
  slot.active = false;
  ++ctx.stats.commits;
  lock_->store(ctx, 0);
  return true;
}

void GlobalLockStm::abort(sim::ThreadCtx& ctx) {
  Slot& slot = *slots_[ctx.id()];
  if (!slot.active) return;
  // Rollback restores committed values in place: exclusive window.
  const RecWindow window = rec_commit_window(ctx);
  // Roll back eager writes, then release.
  for (const WriteEntry& w : slot.undo.entries()) {
    values_[w.var]->store(ctx, w.value);
  }
  slot.active = false;
  ++ctx.stats.aborts;
  rec_voluntary_abort(ctx);
  lock_->store(ctx, 0);
}

}  // namespace optm::stm
