// Construction of the STM implementations by name — the benchmark harness
// and example tools sweep over all of them.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "stm/api.hpp"

namespace optm::stm {

/// Names accepted by make_stm, in canonical bench order. Two families are
/// excluded because their operations can BLOCK on a rival transaction, so
/// they cannot be driven as interleaved logical processes from one OS
/// thread the way the deterministic tests drive the others: "glock"
/// (begin() takes the global lock) and "twopl" (lock_read/lock_write may
/// wait-die-wait on a live holder; use "twopl-nowait" for deterministic
/// driving). Request those by name where blocking is acceptable.
[[nodiscard]] std::vector<std::string_view> all_stm_names();

/// Names of the STMs that ensure opacity AND never block inside an
/// operation (excludes "weak" and "sistm", which trade opacity away, and
/// the blocking "glock"/"twopl" family).
[[nodiscard]] std::vector<std::string_view> opaque_stm_names();

/// Create an STM over `num_vars` variables: "tl2", "tiny" (TL2 plus
/// snapshot extension), "dstm", "astm" (plus the pinned
/// "astm-eager"/"astm-lazy" ablations), "visible", "mv", "norec", "weak",
/// "sistm", "glock", or "twopl"/"twopl-nowait". The
/// ownership-record STMs (dstm, astm*, visible) accept a contention-manager
/// suffix, e.g. "dstm/karma" (default: aggressive).
[[nodiscard]] std::unique_ptr<Stm> make_stm(std::string_view name,
                                            std::size_t num_vars);

}  // namespace optm::stm
