#include "log/reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/hash.hpp"

namespace optm::log {

// --- SegmentReader ----------------------------------------------------------

SegmentReader::~SegmentReader() { close_map(); }

void SegmentReader::close_map() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
    map_ = nullptr;
    map_bytes_ = 0;
  }
}

bool SegmentReader::fail(const std::string& what) {
  if (error_.empty()) error_ = path_ + ": " + what;
  done_ = true;
  return false;
}

bool SegmentReader::open(const std::string& path, bool allow_torn_tail) {
  path_ = path;
  allow_torn_tail_ = allow_torn_tail;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return fail(std::string("open: ") + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int e = errno;
    ::close(fd);
    return fail(std::string("fstat: ") + std::strerror(e));
  }
  file_bytes_ = static_cast<std::size_t>(st.st_size);
  if (file_bytes_ == 0) {
    // A crash between creat and the header write leaves a zero-byte
    // file; for a final segment that is a torn stub (nothing to drop,
    // but still a tear — torn_stub_ carries the signal).
    ::close(fd);
    if (allow_torn_tail_) torn_stub_ = true;
    return fail("empty segment file");
  }
  void* map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return fail(std::string("mmap: ") + std::strerror(errno));
  }
  map_ = static_cast<const unsigned char*>(map);
  map_bytes_ = file_bytes_;

  if (file_bytes_ < kSegmentHeaderBytes) {
    // A crash while creating the file can leave a short header. There is
    // nothing certifiable here; for a FINAL segment LogReader treats the
    // whole stub as a torn tail (signalled via dropped_bytes).
    if (allow_torn_tail_) {
      dropped_bytes_ = file_bytes_;
      torn_stub_ = true;
    }
    return fail("segment shorter than its header");
  }
  std::memcpy(&header_, map_, sizeof header_);
  if (header_.magic == 0 && allow_torn_tail_) {
    // A final segment whose header page never reached the disk: either a
    // pipelined writer's prepared-but-unwritten next segment, or a crash
    // between sizing the file and the header write-back (the kernel may
    // write block pages before the header page, so the rest of the file
    // is untrustworthy even if nonzero). Nothing here was ever reported
    // durable — drop the whole file as a torn stub.
    dropped_bytes_ = file_bytes_;
    torn_stub_ = true;
    return fail("segment header never written (torn stub)");
  }
  if (header_.magic != kSegmentMagic) return fail("bad segment magic");
  if (header_.format_version != kFormatVersion) {
    return fail("unsupported format version " +
                std::to_string(header_.format_version));
  }
  if (header_.header_bytes != kSegmentHeaderBytes) {
    return fail("unexpected header size");
  }
  if (header_.event_size != sizeof(core::Event)) {
    return fail("event size mismatch (log written by an incompatible build)");
  }
  const std::uint32_t crc =
      util::crc32c(map_, offsetof(SegmentHeader, header_crc));
  if (crc != header_.header_crc) return fail("segment header CRC mismatch");
  at_ = kSegmentHeaderBytes;
  next_stamp_ = header_.first_stamp;
  return true;
}

std::span<const core::Event> SegmentReader::torn(const std::string& what) {
  if (allow_torn_tail_) {
    dropped_bytes_ = file_bytes_ - at_;
    done_ = true;
    return {};
  }
  fail(what);
  return {};
}

std::span<const core::Event> SegmentReader::next() {
  if (done_ || map_ == nullptr) return {};
  if (at_ + sizeof(BlockHeader) > file_bytes_) {
    // Exact EOF is a clean seal. A remainder shorter than a BlockHeader
    // that is all zeroes is the pre-sized segment's padding, not a tear:
    // the 4 KiB header page is 16 mod 24 and blocks are 24+48n bytes, so
    // a segment that packs full leaves a zeroed residual of
    // (segment_bytes - 4096) mod 24 bytes — in (0, 24) for sizes like
    // 2 MiB or 8 MiB. Only a nonzero residual byte means a torn write.
    for (std::size_t i = at_; i < file_bytes_; ++i) {
      if (map_[i] != 0) {
        return torn("nonzero trailing bytes shorter than a block header");
      }
    }
    done_ = true;
    return {};
  }
  BlockHeader bh;
  std::memcpy(&bh, map_ + at_, sizeof bh);
  if (bh.block_magic == 0) {  // zeroed space: end of a pre-sized segment
    done_ = true;
    return {};
  }
  if (bh.block_magic != kBlockMagic) return torn("bad block magic");
  if (util::crc32c(map_ + at_, kBlockHeaderCrcBytes) != bh.header_crc) {
    return torn("block header CRC mismatch");
  }
  const std::size_t payload =
      std::size_t{bh.event_count} * sizeof(core::Event);
  if (at_ + sizeof(BlockHeader) + payload > file_bytes_) {
    return torn("block payload overruns the segment");
  }
  if (bh.event_count == 0) return torn("empty block");
  if (bh.first_stamp != next_stamp_) {
    // A header that passes CRC but breaks stamp continuity is corruption,
    // not tearing: never certify across a gap.
    fail("stamp discontinuity (expected " + std::to_string(next_stamp_) +
         ", block says " + std::to_string(bh.first_stamp) + ")");
    return {};
  }
  const unsigned char* body = map_ + at_ + sizeof(BlockHeader);
  if (util::crc32c(body, payload) != bh.payload_crc) {
    return torn("block payload CRC mismatch");
  }
  at_ += sizeof(BlockHeader) + payload;
  next_stamp_ += bh.event_count;
  events_read_ += bh.event_count;
  ++blocks_read_;
  return {reinterpret_cast<const core::Event*>(body), bh.event_count};
}

// --- LogReader --------------------------------------------------------------

bool LogReader::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
  return false;
}

bool LogReader::open(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return fail(directory + ": " + ec.message());
  for (const auto& entry : it) {
    const auto name = entry.path().filename().string();
    if (name.size() > std::strlen(kSegmentSuffix) &&
        name.rfind(kSegmentSuffix) == name.size() - std::strlen(kSegmentSuffix)) {
      files_.push_back(entry.path().string());
    }
  }
  if (files_.empty()) return fail(directory + ": no segment files");
  // seg-%06llu names outgrow their zero padding at 1,000,000 segments,
  // where plain lexicographic order would put seg-1000000 before
  // seg-999999. Shorter names (fewer digits) sort first; ties (equal
  // padding) stay lexicographic, which is numeric for zero-padded names.
  std::sort(files_.begin(), files_.end(),
            [](const std::string& a, const std::string& b) {
              const auto an = std::filesystem::path(a).filename().string();
              const auto bn = std::filesystem::path(b).filename().string();
              return an.size() != bn.size() ? an.size() < bn.size() : an < bn;
            });
  // The pipelined writer keeps the NEXT segment created (all-zero, no
  // header yet) while the current one fills, so a crash can leave one
  // trailing headerless stub AFTER the segment that holds the real tail.
  // Drop that stub up front — otherwise the preceding segment would be
  // opened as non-final and its (legitimate, recoverable) torn tail
  // would hard-fail. Only the LAST file can be such a stub; a headerless
  // file anywhere else is still mid-log damage and hard-fails below.
  if (files_.size() >= 2 && trailing_stub(files_.back())) {
    tail_torn_ = true;
    files_.pop_back();
  }
  return open_current();
}

/// True when `path` is a headerless crash stub (zero-length, shorter
/// than a header, or an all-zero header magic): nothing in it was ever
/// reported durable. Counts its bytes as dropped.
bool LogReader::trailing_stub(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  bool stub = false;
  if (size < kSegmentHeaderBytes) {
    stub = true;  // includes the zero-length crash-between-creat-and-size case
  } else {
    std::uint64_t magic = 1;
    if (::pread(fd, &magic, sizeof magic, 0) == sizeof magic && magic == 0) {
      stub = true;
    }
  }
  ::close(fd);
  if (stub) dropped_bytes_ += size;
  return stub;
}

bool LogReader::open_current() {
  const bool is_last = cursor_ + 1 == files_.size();
  if (!seg_.open(files_[cursor_], /*allow_torn_tail=*/is_last)) {
    if (is_last && seg_.tail_dropped()) {
      // The whole final segment is a torn stub (crash during creation):
      // drop it and end the stream cleanly.
      dropped_bytes_ += seg_.dropped_bytes();
      tail_torn_ = true;
      finish_current();
      current_open_ = false;
      return true;
    }
    return fail(seg_.error());
  }
  const auto& h = seg_.header();
  if (h.segment_index != cursor_) {
    return fail(files_[cursor_] + ": segment index " +
                std::to_string(h.segment_index) + " at position " +
                std::to_string(cursor_));
  }
  if (h.first_stamp != expected_stamp_) {
    return fail(files_[cursor_] + ": first stamp " +
                std::to_string(h.first_stamp) + ", expected " +
                std::to_string(expected_stamp_));
  }
  LogMetadata meta;
  meta.runtime = std::string(h.runtime, ::strnlen(h.runtime, kRuntimeChars));
  meta.policy = std::string(h.policy, ::strnlen(h.policy, kPolicyChars));
  meta.window_mode =
      std::string(h.window_mode, ::strnlen(h.window_mode, kWindowModeChars));
  meta.num_vars = h.num_vars;
  meta.threads = h.threads;
  if (cursor_ == 0) {
    metadata_ = meta;
  } else if (meta.runtime != metadata_.runtime ||
             meta.policy != metadata_.policy ||
             meta.window_mode != metadata_.window_mode ||
             meta.num_vars != metadata_.num_vars) {
    return fail(files_[cursor_] + ": metadata differs from the first segment");
  }
  current_open_ = true;
  return true;
}

void LogReader::finish_current() {
  SegmentInfo info;
  info.file = files_[cursor_];
  info.index = cursor_;
  info.first_stamp = seg_.header().first_stamp;
  info.events = seg_.events_read();
  info.blocks = seg_.blocks_read();
  info.file_bytes = seg_.file_bytes();
  info.dropped_bytes = seg_.dropped_bytes();
  segments_.push_back(info);
  seg_.close_map();
}

std::span<const core::Event> LogReader::next() {
  while (ok() && current_open_) {
    auto batch = seg_.next();
    if (!batch.empty()) {
      events_read_ += batch.size();
      expected_stamp_ += batch.size();
      return batch;
    }
    if (!seg_.ok()) {
      fail(seg_.error());
      return {};
    }
    dropped_bytes_ += seg_.dropped_bytes();
    const bool torn = seg_.tail_dropped();
    if (torn) tail_torn_ = true;
    finish_current();
    current_open_ = false;
    ++cursor_;
    if (cursor_ >= files_.size()) break;
    if (torn) {
      // Only the final segment may be torn; seeing more files after a
      // drop means mid-log damage.
      fail(files_[cursor_ - 1] + ": torn tail in a non-final segment");
      break;
    }
    // Reset the per-segment reader state by constructing in place.
    seg_.~SegmentReader();
    new (&seg_) SegmentReader();
    if (!open_current()) break;
  }
  return {};
}

}  // namespace optm::log
