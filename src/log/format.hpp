// On-disk format of the durable segmented event log ("optm-log-v1").
//
// A log is a directory of fixed-capacity segment files
//
//   seg-000000.optmlog, seg-000001.optmlog, ...
//
// each laid out as
//
//   [SegmentHeader | Block | Block | ... | end]
//
// SegmentHeader is one 4 KiB page: magic, format version, the
// runtime/policy/window-mode metadata mirroring the optm-soak-v1 JSON
// fields, the global stamp of the segment's first event, and a CRC-32C
// over the header prefix. Each Block is a 24-byte BlockHeader followed by
// a payload of raw `core::Event` records (48 bytes each, native layout,
// native endianness — the log is a same-machine audit trail, not an
// interchange format; `event_size` in the header guards cross-ABI reads).
// Every block corresponds to one stamp-contiguous `Recorder::drain()`
// batch (split only at segment capacity), so `BlockHeader::first_stamp`
// equals the cumulative event count and the reader can verify stamp
// continuity within and across segments.
//
// Alignment: the header page is 4 KiB and sizeof(BlockHeader) == 24 with
// sizeof(Event) == 48 — both multiples of 8 — so every payload starts
// 8-aligned in the mapping and the reader hands out
// `std::span<const core::Event>` views straight over the mmap, zero-copy.
//
// Rotation: the writer pre-sizes each segment to `segment_bytes` (so a
// crash leaves zeroed, cleanly-detectable space, never garbage from a
// recycled file) and rotates when the next block would not fit. A clean
// close truncates the tail segment to its used size and seals the end
// with either exact EOF or a zero `block_magic`. A rotated segment that
// packs full can leave a residual SHORTER than a BlockHeader — the 4 KiB
// header is 16 mod 24 and blocks are 24+48n bytes, so the residual is
// (segment_bytes - 4096) mod 24 — which stays all-zero; the reader
// treats an all-zero sub-header residual as clean end-of-segment and
// only a nonzero byte in it as a torn write.
//
// Truncation rules (crash tolerance): a block in the LAST segment whose
// header or payload fails magic/CRC/bounds checks is a torn tail — the
// reader drops it (and everything after it) and reports the number of
// bytes dropped; the surviving prefix is still certifiable. The same
// damage in a non-final segment, or a damaged segment header, is a hard
// error: certification refuses rather than silently verifying a gapped
// history (never mis-certify). One pipelined-writer refinement: the
// writer keeps the NEXT segment pre-created (full-size, all-zero, no
// header yet) while the current one fills, so a crash can additionally
// leave ONE trailing headerless file; the reader drops it (and treats a
// final segment whose header page never hit the disk the same way) —
// nothing in a headerless file was ever reported durable. Headerless
// files anywhere but the tail remain hard errors.
//
// Note (v1 stability): the pipelined writer and the hardware CRC-32C
// dispatch (util/crc32c.cpp) changed WHO does the syscalls and HOW the
// checksum is computed, not the bytes: the on-disk layout above and the
// CRC-32C polynomial (Castagnoli, reflected 0x82F63B78) are unchanged,
// and pipeline on/off produce byte-identical files (asserted by
// tests/log/log_pipeline_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>

#include "core/event.hpp"

namespace optm::log {

/// "OPTMLOG1" little-endian.
inline constexpr std::uint64_t kSegmentMagic = 0x3147'4f4c'4d54'504fULL;
inline constexpr std::uint32_t kFormatVersion = 1;
/// "BLK1" little-endian. A zero magic marks the end of a segment.
inline constexpr std::uint32_t kBlockMagic = 0x314b'4c42u;
inline constexpr std::size_t kSegmentHeaderBytes = 4096;
inline constexpr char kSegmentSuffix[] = ".optmlog";

/// Fixed metadata strings are NUL-padded; longer values are truncated.
inline constexpr std::size_t kRuntimeChars = 32;
inline constexpr std::size_t kPolicyChars = 32;
inline constexpr std::size_t kWindowModeChars = 16;

struct SegmentHeader {
  std::uint64_t magic = kSegmentMagic;
  std::uint32_t format_version = kFormatVersion;
  std::uint32_t header_bytes = kSegmentHeaderBytes;
  std::uint64_t segment_index = 0;   // position in the log, from 0
  std::uint64_t segment_bytes = 0;   // configured rotation capacity
  std::uint64_t first_stamp = 0;     // global stamp of this segment's first event
  std::uint32_t event_size = sizeof(core::Event);  // cross-ABI guard
  std::uint32_t num_vars = 0;        // registers in the recorded model
  std::uint32_t threads = 0;         // workload threads (informational)
  std::uint32_t reserved = 0;
  // optm-soak-v1 metadata mirror: stm name, version-order policy,
  // "window-free" / "windowed".
  char runtime[kRuntimeChars] = {};
  char policy[kPolicyChars] = {};
  char window_mode[kWindowModeChars] = {};
  /// CRC-32C over the bytes preceding this field.
  std::uint32_t header_crc = 0;
  // Rest of the 4 KiB page is zero.
};

inline constexpr std::size_t kSegmentHeaderUsedBytes =
    offsetof(SegmentHeader, header_crc) + sizeof(std::uint32_t);
static_assert(kSegmentHeaderUsedBytes <= kSegmentHeaderBytes);
static_assert(std::is_trivially_copyable_v<SegmentHeader>);

struct BlockHeader {
  std::uint32_t block_magic = kBlockMagic;  // 0 == end of segment
  std::uint32_t event_count = 0;
  std::uint64_t first_stamp = 0;  // global stamp of the block's first event
  std::uint32_t payload_crc = 0;  // CRC-32C over event_count * sizeof(Event)
  std::uint32_t header_crc = 0;   // CRC-32C over the 20 bytes above
};

inline constexpr std::size_t kBlockHeaderCrcBytes =
    offsetof(BlockHeader, header_crc);
static_assert(sizeof(BlockHeader) == 24);
static_assert(sizeof(BlockHeader) % alignof(core::Event) == 0);
static_assert(std::is_trivially_copyable_v<BlockHeader>);

// The payload IS the in-memory representation: 48-byte trivially copyable
// events, cast straight out of the 8-aligned mapping.
static_assert(sizeof(core::Event) == 48);
static_assert(alignof(core::Event) == 8);
static_assert(std::is_trivially_copyable_v<core::Event>);
static_assert(kSegmentHeaderBytes % alignof(core::Event) == 0);

/// Smallest segment capacity that still holds one single-event block.
inline constexpr std::size_t kMinSegmentBytes =
    kSegmentHeaderBytes + sizeof(BlockHeader) + sizeof(core::Event);

/// "seg-000042.optmlog"
[[nodiscard]] inline std::string segment_file_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%06llu%s",
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return buf;
}

}  // namespace optm::log
