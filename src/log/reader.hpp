// SegmentReader / LogReader: stream events back out of a segmented
// binary log (format.hpp), zero-copy — every batch handed out is a
// `std::span<const core::Event>` view straight over the read-only mmap,
// valid until the owning reader advances past that segment or is
// destroyed.
//
// Damage policy (see format.hpp "Truncation rules"): a torn tail in the
// final segment is recovered — the reader drops the damaged suffix,
// reports the dropped byte count, and the surviving stamp-contiguous
// prefix streams normally. Any other damage (mid-segment corruption,
// damage in a non-final segment, a bad segment header, a stamp gap) is a
// hard error so a gapped history is never certified.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "log/format.hpp"
#include "log/writer.hpp"  // LogMetadata

namespace optm::log {

/// Reads one segment file. `allow_torn_tail` is set by LogReader for the
/// final segment only.
class SegmentReader {
 public:
  SegmentReader() = default;
  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  bool open(const std::string& path, bool allow_torn_tail);
  void close_map();

  /// Next block's events; empty at end of segment (or after an error —
  /// check ok()). The span aliases the mapping.
  [[nodiscard]] std::span<const core::Event> next();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const SegmentHeader& header() const noexcept { return header_; }

  /// True when a damaged suffix was dropped. torn_stub_ covers the
  /// zero-byte-file case (crash between creat and the header write),
  /// where there are no bytes to count but the tail is still torn.
  [[nodiscard]] bool tail_dropped() const noexcept {
    return dropped_bytes_ != 0 || torn_stub_;
  }
  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept { return dropped_bytes_; }
  [[nodiscard]] std::uint64_t events_read() const noexcept { return events_read_; }
  [[nodiscard]] std::uint64_t blocks_read() const noexcept { return blocks_read_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }

 private:
  bool fail(const std::string& what);
  /// Tail damage at `at_`: recover (drop the suffix) or flag.
  std::span<const core::Event> torn(const std::string& what);

  std::string path_;
  std::string error_;
  bool allow_torn_tail_ = false;
  bool torn_stub_ = false;  // whole file is an unreadable (but final) stub
  bool done_ = false;

  const unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;   // mapped length (page-rounded file size)
  std::size_t file_bytes_ = 0;  // actual file size
  std::size_t at_ = 0;          // read cursor

  SegmentHeader header_{};
  std::uint64_t next_stamp_ = 0;  // expected first_stamp of the next block
  std::uint64_t events_read_ = 0;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

/// Per-segment stats surfaced by `checker_tool inspect-log`.
struct SegmentInfo {
  std::string file;
  std::uint64_t index = 0;
  std::uint64_t first_stamp = 0;
  std::uint64_t events = 0;
  std::uint64_t blocks = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t dropped_bytes = 0;  // torn tail recovered (final segment only)
};

/// Streams an entire log directory in stamp order, one drained batch at a
/// time. Validates segment-index and stamp continuity across files.
class LogReader {
 public:
  LogReader() = default;

  bool open(const std::string& directory);

  /// Next batch (may come from the next segment); empty at end of log or
  /// error — check ok() after the stream dries up. The span aliases the
  /// current segment's mapping and is invalidated by the next next().
  [[nodiscard]] std::span<const core::Event> next();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Metadata from the first segment header (all headers must agree).
  [[nodiscard]] const LogMetadata& metadata() const noexcept { return metadata_; }
  [[nodiscard]] std::size_t num_segments() const noexcept { return files_.size(); }
  [[nodiscard]] std::uint64_t events_read() const noexcept { return events_read_; }
  [[nodiscard]] bool tail_dropped() const noexcept { return tail_torn_; }
  [[nodiscard]] std::uint64_t dropped_bytes() const noexcept { return dropped_bytes_; }

  /// Completed segments' stats (grows as the stream advances; complete
  /// after the stream ends). inspect-log drives next() to exhaustion and
  /// then reads this.
  [[nodiscard]] const std::vector<SegmentInfo>& segments() const noexcept {
    return segments_;
  }

 private:
  bool fail(const std::string& what);
  bool open_current();     // open files_[cursor_]
  void finish_current();   // record stats, close mapping
  bool trailing_stub(const std::string& path);  // headerless crash stub?

  std::string error_;
  std::vector<std::string> files_;  // sorted segment paths
  std::size_t cursor_ = 0;
  bool current_open_ = false;
  SegmentReader seg_;
  LogMetadata metadata_;
  std::uint64_t expected_stamp_ = 0;
  std::uint64_t events_read_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  bool tail_torn_ = false;
  std::vector<SegmentInfo> segments_;
};

}  // namespace optm::log
