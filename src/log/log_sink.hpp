// LogWriterSink: the durable leg of the drain pipeline — adapts
// log::LogWriter to the stm::EventSink interface so "append to disk" can
// be fed by the same DrainPump (and tee'd with live certification).
#pragma once

#include <span>

#include "log/writer.hpp"
#include "stm/sink.hpp"

namespace optm::log {

class LogWriterSink final : public stm::EventSink {
 public:
  explicit LogWriterSink(LogWriter& writer) noexcept : writer_(&writer) {}

  bool accept(std::span<const core::Event> batch) override {
    return writer_->append(batch);
  }
  /// Seals the log (truncates the tail segment); a write error anywhere
  /// in the run surfaces here at the latest.
  bool finish() override { return writer_->close(); }

 private:
  LogWriter* writer_;
};

}  // namespace optm::log
