// LogWriter: appends drained event batches to an mmap-backed segmented
// binary log (format.hpp). One writer owns one log directory; segments
// rotate at the configured capacity and a clean close() truncates the
// tail segment to its used size.
//
// Two execution modes, byte-identical output (same files, same bytes):
//
//   pipeline=off  — every segment syscall (open/ftruncate/mmap/fsync-dir
//                   at creation, msync/munmap at rotation) runs inline on
//                   the appending thread. The original writer.
//   pipeline=on   — a background prep thread always keeps segment N+1
//                   created, fallocate'd, mmap'd (pre-faulted) and its
//                   directory entry fsync'd while N fills, so rotation on
//                   the append path is a pointer swap plus a 4 KiB header
//                   write; the sealed segment's msync+munmap is handed to
//                   the same thread. close() joins all deferred work, so
//                   the durability guarantee is unchanged: everything the
//                   writer reported ok is on disk once close() returns
//                   true, and any deferred write error latches through
//                   ok()/error() no later than close().
//
// Crash-consistency invariants hold in both modes by construction:
// header page written before blocks, payload before block header, and a
// segment's directory entry durable before its first block (the prep
// thread fsyncs the directory before handing a segment over).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/event.hpp"
#include "log/format.hpp"

namespace optm::log {

/// The optm-soak-v1 metadata mirrored into every segment header, so a log
/// is self-describing: `checker_tool certify-log` recovers the policy and
/// the model size without side-channel flags.
struct LogMetadata {
  std::string runtime = "?";
  std::string policy = "?";
  std::string window_mode = "?";
  std::uint32_t num_vars = 0;
  std::uint32_t threads = 0;
};

struct WriterOptions {
  std::string directory;  // created if absent; must be empty of segments
  /// Per-segment capacity (header page included). Clamped up to
  /// kMinSegmentBytes. Default 64 MiB ≈ 1.4M events per segment.
  std::size_t segment_bytes = std::size_t{64} << 20;
  /// Background segment prep + deferred seal (see the header comment).
  /// Off reproduces the original fully-synchronous writer byte-for-byte.
  bool pipeline = true;
  LogMetadata metadata;
};

/// Not thread-safe: exactly one thread appends (the drain pump). All
/// methods are no-ops after the first failure; check ok()/error().
class LogWriter {
 public:
  explicit LogWriter(WriterOptions options);
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Append one stamp-contiguous batch as one block (split across
  /// segments only when it outgrows the remaining capacity).
  bool append(std::span<const core::Event> events);

  /// Seal the log: msync, truncate the tail segment to its used bytes,
  /// close the mapping (joining any deferred pipeline work first).
  /// Idempotent. append() after close() fails.
  bool close();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::uint64_t events_written() const noexcept { return events_written_; }
  [[nodiscard]] std::uint64_t blocks_written() const noexcept { return blocks_written_; }
  [[nodiscard]] std::uint64_t segments_written() const noexcept { return segments_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  /// Directory fsyncs covering the segments this writer filled (one per
  /// segment made current, one at close): the durability discipline
  /// regression tests assert on this — an msync'd segment whose DIRECTORY
  /// ENTRY is not durable can vanish wholesale in a crash, which recovery
  /// would misread as non-final damage and hard-fail. In pipelined mode
  /// the prep thread performs the fsync before the segment is handed
  /// over; it is counted when the segment becomes current.
  [[nodiscard]] std::uint64_t dir_fsyncs() const noexcept { return dir_fsyncs_; }

  /// Observability for the pipelined mode (zeros when pipeline=off).
  struct PipelineStats {
    bool enabled = false;
    /// Rotations where the append thread had to WAIT for the prep thread
    /// (segment N filled before N+1 was ready): sustained nonzero means
    /// the drain outruns segment preparation.
    std::uint64_t prep_stalls = 0;
    /// Peak number of sealed segments whose deferred msync had not yet
    /// completed: how far durability lagged the append front.
    std::uint64_t flush_lag_peak = 0;
  };
  [[nodiscard]] PipelineStats pipeline_stats() const noexcept;

 private:
  struct Pipeline;  // the background prep/seal thread (writer.cpp)

  bool open_segment();
  bool close_segment(bool truncate_to_used);
  bool sync_directory();
  bool fail(const std::string& what);
  void write_segment_header();
  /// Events that still fit in the current segment as one more block.
  [[nodiscard]] std::size_t room_events() const noexcept;
  void put_block(std::span<const core::Event> events);

  WriterOptions options_;
  std::string error_;
  bool closed_ = false;

  int fd_ = -1;
  int dir_fd_ = -1;  // the log directory, held open for entry fsyncs
  unsigned char* map_ = nullptr;  // current segment mapping
  std::size_t map_bytes_ = 0;
  std::size_t used_ = 0;  // bytes written into the current segment

  std::uint64_t segments_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t dir_fsyncs_ = 0;
  std::uint64_t prep_stalls_ = 0;

  std::unique_ptr<Pipeline> pipe_;
};

}  // namespace optm::log
