// LogWriter: appends drained event batches to an mmap-backed segmented
// binary log (format.hpp). One writer owns one log directory; segments
// rotate at the configured capacity and a clean close() truncates the
// tail segment to its used size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/event.hpp"
#include "log/format.hpp"

namespace optm::log {

/// The optm-soak-v1 metadata mirrored into every segment header, so a log
/// is self-describing: `checker_tool certify-log` recovers the policy and
/// the model size without side-channel flags.
struct LogMetadata {
  std::string runtime = "?";
  std::string policy = "?";
  std::string window_mode = "?";
  std::uint32_t num_vars = 0;
  std::uint32_t threads = 0;
};

struct WriterOptions {
  std::string directory;  // created if absent; must be empty of segments
  /// Per-segment capacity (header page included). Clamped up to
  /// kMinSegmentBytes. Default 64 MiB ≈ 1.4M events per segment.
  std::size_t segment_bytes = std::size_t{64} << 20;
  LogMetadata metadata;
};

/// Not thread-safe: exactly one thread appends (the drain pump). All
/// methods are no-ops after the first failure; check ok()/error().
class LogWriter {
 public:
  explicit LogWriter(WriterOptions options);
  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Append one stamp-contiguous batch as one block (split across
  /// segments only when it outgrows the remaining capacity).
  bool append(std::span<const core::Event> events);

  /// Seal the log: msync, truncate the tail segment to its used bytes,
  /// close the mapping. Idempotent. append() after close() fails.
  bool close();

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  [[nodiscard]] std::uint64_t events_written() const noexcept { return events_written_; }
  [[nodiscard]] std::uint64_t blocks_written() const noexcept { return blocks_written_; }
  [[nodiscard]] std::uint64_t segments_written() const noexcept { return segments_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  /// Directory fsyncs performed (one per segment created, one at close):
  /// the durability discipline regression tests assert on this — an
  /// msync'd segment whose DIRECTORY ENTRY is not durable can vanish
  /// wholesale in a crash, which recovery would misread as non-final
  /// damage and hard-fail.
  [[nodiscard]] std::uint64_t dir_fsyncs() const noexcept { return dir_fsyncs_; }

 private:
  bool open_segment();
  bool close_segment(bool truncate_to_used);
  bool sync_directory();
  bool fail(const std::string& what);
  /// Events that still fit in the current segment as one more block.
  [[nodiscard]] std::size_t room_events() const noexcept;
  void put_block(std::span<const core::Event> events);

  WriterOptions options_;
  std::string error_;
  bool closed_ = false;

  int fd_ = -1;
  int dir_fd_ = -1;  // the log directory, held open for entry fsyncs
  unsigned char* map_ = nullptr;  // current segment mapping
  std::size_t map_bytes_ = 0;
  std::size_t used_ = 0;  // bytes written into the current segment

  std::uint64_t segments_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t dir_fsyncs_ = 0;
};

}  // namespace optm::log
