#include "log/writer.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/hash.hpp"

namespace optm::log {

namespace {

void copy_padded(char* dst, std::size_t cap, const std::string& src) {
  std::memset(dst, 0, cap);
  std::memcpy(dst, src.data(), std::min(src.size(), cap - 1));
}

}  // namespace

LogWriter::LogWriter(WriterOptions options) : options_(std::move(options)) {
  options_.segment_bytes = std::max(options_.segment_bytes, kMinSegmentBytes);
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    fail("create_directories(" + options_.directory + "): " + ec.message());
    return;
  }
  // Hold the directory open for the lifetime of the writer: segment
  // creation/rotation/truncation must fsync the DIRECTORY too, or a crash
  // can lose the entry of a fully-msync'd segment (recovery would then
  // see a hole and hard-fail as non-final damage).
  dir_fd_ = ::open(options_.directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0) {
    fail("open(" + options_.directory + "): " + std::strerror(errno));
  }
}

LogWriter::~LogWriter() { close(); }

bool LogWriter::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
  return false;
}

std::size_t LogWriter::room_events() const noexcept {
  const std::size_t used = used_ == 0 ? kSegmentHeaderBytes : used_;
  if (used + sizeof(BlockHeader) >= map_bytes_) return 0;
  return (map_bytes_ - used - sizeof(BlockHeader)) / sizeof(core::Event);
}

bool LogWriter::open_segment() {
  const auto path = std::filesystem::path(options_.directory) /
                    segment_file_name(segments_);
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_EXCL, 0644);
  if (fd_ < 0) {
    return fail("open(" + path.string() + "): " + std::strerror(errno));
  }
  if (::ftruncate(fd_, static_cast<off_t>(options_.segment_bytes)) != 0) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    return fail("ftruncate(" + path.string() + "): " + std::strerror(e));
  }
  void* map = ::mmap(nullptr, options_.segment_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    return fail("mmap(" + path.string() + "): " + std::strerror(e));
  }
  map_ = static_cast<unsigned char*>(map);
  map_bytes_ = options_.segment_bytes;

  SegmentHeader h;
  h.segment_index = segments_;
  h.segment_bytes = options_.segment_bytes;
  h.first_stamp = events_written_;
  h.num_vars = options_.metadata.num_vars;
  h.threads = options_.metadata.threads;
  copy_padded(h.runtime, kRuntimeChars, options_.metadata.runtime);
  copy_padded(h.policy, kPolicyChars, options_.metadata.policy);
  copy_padded(h.window_mode, kWindowModeChars, options_.metadata.window_mode);
  h.header_crc = util::crc32c(&h, offsetof(SegmentHeader, header_crc));
  std::memset(map_, 0, kSegmentHeaderBytes);
  std::memcpy(map_, &h, sizeof h);
  used_ = kSegmentHeaderBytes;
  ++segments_;
  bytes_written_ += kSegmentHeaderBytes;
  // The new segment's directory entry (name + inode) must be durable
  // before any block lands in it: otherwise a crash after rotation can
  // drop a whole mid-log segment even though its pages were msync'd.
  return sync_directory();
}

bool LogWriter::sync_directory() {
  if (dir_fd_ < 0) return fail("directory fd not open");
  if (::fsync(dir_fd_) != 0) {
    return fail(std::string("fsync(directory): ") + std::strerror(errno));
  }
  ++dir_fsyncs_;
  return true;
}

void LogWriter::put_block(std::span<const core::Event> events) {
  const std::size_t payload = events.size_bytes();
  unsigned char* at = map_ + used_;
  // Payload first, header last: until the header bytes land, the reader
  // sees either zeroes (end of segment) or a CRC-failing torn tail.
  unsigned char* body = at + sizeof(BlockHeader);
  std::memcpy(body, events.data(), payload);
  BlockHeader bh;
  bh.event_count = static_cast<std::uint32_t>(events.size());
  bh.first_stamp = events_written_;
  bh.payload_crc = util::crc32c(body, payload);
  bh.header_crc = util::crc32c(&bh, kBlockHeaderCrcBytes);
  std::memcpy(at, &bh, sizeof bh);
  used_ += sizeof(BlockHeader) + payload;
  bytes_written_ += sizeof(BlockHeader) + payload;
  events_written_ += events.size();
  ++blocks_written_;
}

bool LogWriter::append(std::span<const core::Event> events) {
  if (!ok()) return false;
  if (closed_) return fail("append after close");
  while (!events.empty()) {
    if (map_ == nullptr && !open_segment()) return false;
    std::size_t room = room_events();
    if (room == 0) {
      if (!close_segment(/*truncate_to_used=*/false)) return false;
      if (!open_segment()) return false;
      room = room_events();
    }
    const std::size_t take = std::min(events.size(), room);
    // event_count is u32; a drained batch can't realistically exceed it,
    // but split defensively rather than truncate.
    const std::size_t n = std::min(take, std::size_t{0x7fffffff});
    put_block(events.first(n));
    events = events.subspan(n);
  }
  return true;
}

bool LogWriter::close_segment(bool truncate_to_used) {
  if (map_ == nullptr) return true;
  bool ok_here = true;
  if (::msync(map_, map_bytes_, MS_SYNC) != 0) {
    ok_here = fail(std::string("msync: ") + std::strerror(errno));
  }
  ::munmap(map_, map_bytes_);
  map_ = nullptr;
  map_bytes_ = 0;
  if (ok_here && truncate_to_used) {
    if (::ftruncate(fd_, static_cast<off_t>(used_)) != 0) {
      ok_here = fail(std::string("ftruncate(tail): ") + std::strerror(errno));
    } else if (::fsync(fd_) != 0) {
      // msync covered the mapped pages; the tail truncation is an INODE
      // change and needs its own fsync to be durable.
      ok_here = fail(std::string("fsync(tail): ") + std::strerror(errno));
    }
  }
  ::close(fd_);
  fd_ = -1;
  used_ = 0;
  return ok_here;
}

bool LogWriter::close() {
  if (closed_) return ok();
  closed_ = true;
  // An empty log still gets one (header-only) segment so the metadata —
  // and the fact that zero events were recorded — is durable.
  if (ok() && map_ == nullptr && segments_ == 0) open_segment();
  close_segment(/*truncate_to_used=*/true);
  // Seal the directory state (covers the tail truncation above and any
  // rename-like metadata still in flight) before declaring the log closed.
  if (ok()) sync_directory();
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
  return ok();
}

}  // namespace optm::log
