#include "log/writer.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>
#include <utility>

#include "util/hash.hpp"

namespace optm::log {

namespace {

void copy_padded(char* dst, std::size_t cap, const std::string& src) {
  std::memset(dst, 0, cap);
  std::memcpy(dst, src.data(), std::min(src.size(), cap - 1));
}

/// Size a segment file to `bytes`. fallocate actually reserves the
/// blocks (so later write-faults into the mapping never stall on block
/// allocation); filesystems without support fall back to the sparse
/// ftruncate the non-pipelined writer uses. Either way the file is
/// `bytes` of zeroes — the on-disk content is identical.
[[nodiscard]] bool size_segment(int fd, std::size_t bytes, bool preallocate,
                                std::string* error) {
  if (preallocate && ::fallocate(fd, 0, 0, static_cast<off_t>(bytes)) == 0) {
    return true;
  }
  if (preallocate && errno != EOPNOTSUPP && errno != ENOSYS &&
      errno != EINVAL) {
    *error = std::string("fallocate: ") + std::strerror(errno);
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    *error = std::string("ftruncate: ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

// --- the background prep/seal thread -----------------------------------------
//
// One worker owns every off-hot-path segment syscall: creating,
// fallocate'ing, mmap'ing (MAP_POPULATE pre-faults the page cache) and
// dir-fsync'ing the NEXT segment while the current one fills, and
// msync+munmap+close of sealed segments after rotation. Prepare requests
// take priority over seals so the append thread stalls as rarely as
// possible. Stop drains all outstanding work before the thread exits —
// close() joining the thread is what keeps the durability contract
// identical to the synchronous writer.
struct LogWriter::Pipeline {
  struct Prepared {
    int fd = -1;
    unsigned char* map = nullptr;
    std::uint64_t index = 0;
    std::string path;
    std::string error;  // nonempty: preparation failed
  };
  struct SealJob {
    unsigned char* map = nullptr;
    std::size_t bytes = 0;
    int fd = -1;
  };

  Pipeline(std::string directory, int dir_fd, std::size_t segment_bytes)
      : directory_(std::move(directory)),
        dir_fd_(dir_fd),
        segment_bytes_(segment_bytes),
        worker_([this] { run(); }) {}

  ~Pipeline() { (void)drain_and_stop(); }

  void request_prepare(std::uint64_t index) {
    std::lock_guard<std::mutex> lock(m_);
    prep_index_ = index;
    prep_requested_ = true;
    cv_work_.notify_one();
  }

  /// Block until the requested segment is ready; `stalled` reports
  /// whether the append thread actually had to wait.
  [[nodiscard]] Prepared take_prepared(bool* stalled) {
    std::unique_lock<std::mutex> lock(m_);
    *stalled = !prep_ready_;
    cv_ready_.wait(lock, [this] { return prep_ready_; });
    prep_ready_ = false;
    return std::exchange(prepared_, Prepared{});
  }

  void seal_async(unsigned char* map, std::size_t bytes, int fd) {
    std::lock_guard<std::mutex> lock(m_);
    seals_.push_back(SealJob{map, bytes, fd});
    flush_lag_ = std::max(flush_lag_, seals_.size() + (sealing_ ? 1 : 0));
    cv_work_.notify_one();
  }

  /// Join the worker after it finishes all queued work. Returns the
  /// first SEAL error (acked data) — a failed prepare of a segment the
  /// writer never took is not an error, just cleanup.
  [[nodiscard]] std::string drain_and_stop() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
      cv_work_.notify_one();
    }
    if (worker_.joinable()) worker_.join();
    // Clean up a prepared-but-unused segment: without this, close() would
    // leave a header-less all-zero file that the reader must drop as a
    // torn stub. The caller fsyncs the directory after us.
    if (prep_ready_ && prepared_.error.empty()) {
      ::munmap(prepared_.map, segment_bytes_);
      ::close(prepared_.fd);
      ::unlink(prepared_.path.c_str());
    }
    prep_ready_ = false;
    return seal_error_;
  }

  [[nodiscard]] std::uint64_t flush_lag_peak() const noexcept {
    return static_cast<std::uint64_t>(flush_lag_);
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
      cv_work_.wait(lock, [this] {
        return stop_ || prep_requested_ || !seals_.empty();
      });
      if (prep_requested_) {
        const std::uint64_t index = prep_index_;
        prep_requested_ = false;
        lock.unlock();
        Prepared p = prepare(index);
        lock.lock();
        prepared_ = std::move(p);
        prep_ready_ = true;
        cv_ready_.notify_one();
        continue;
      }
      if (!seals_.empty()) {
        const SealJob job = seals_.front();
        seals_.erase(seals_.begin());
        sealing_ = true;
        lock.unlock();
        std::string err;
        if (::msync(job.map, job.bytes, MS_SYNC) != 0) {
          err = std::string("msync: ") + std::strerror(errno);
        }
        ::munmap(job.map, job.bytes);
        ::close(job.fd);
        lock.lock();
        sealing_ = false;
        if (!err.empty() && seal_error_.empty()) seal_error_ = std::move(err);
        continue;
      }
      if (stop_) return;  // all work drained
    }
  }

  [[nodiscard]] Prepared prepare(std::uint64_t index) {
    Prepared p;
    p.index = index;
    p.path = (std::filesystem::path(directory_) / segment_file_name(index))
                 .string();
    p.fd = ::open(p.path.c_str(), O_CREAT | O_RDWR | O_EXCL, 0644);
    if (p.fd < 0) {
      p.error = "open(" + p.path + "): " + std::strerror(errno);
      return p;
    }
    std::string size_err;
    if (!size_segment(p.fd, segment_bytes_, /*preallocate=*/true,
                      &size_err)) {
      p.error = p.path + ": " + size_err;
      ::close(p.fd);
      ::unlink(p.path.c_str());
      p.fd = -1;
      return p;
    }
    // MAP_POPULATE pre-faults the page cache so the append thread's
    // first touch of each page is a cheap dirtying fault, not an
    // allocate-and-zero one. The mapping stays clean (nothing written),
    // so the eventual msync only writes back pages that hold data.
    void* map = ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, p.fd, 0);
    if (map == MAP_FAILED) {
      p.error = "mmap(" + p.path + "): " + std::strerror(errno);
      ::close(p.fd);
      ::unlink(p.path.c_str());
      p.fd = -1;
      return p;
    }
    p.map = static_cast<unsigned char*>(map);
    // The new segment's directory entry must be durable before the
    // append thread lands any block in it (same invariant as the
    // synchronous writer, moved off the hot path).
    if (::fsync(dir_fd_) != 0) {
      p.error = std::string("fsync(directory): ") + std::strerror(errno);
      ::munmap(p.map, segment_bytes_);
      ::close(p.fd);
      ::unlink(p.path.c_str());
      p.fd = -1;
      p.map = nullptr;
    }
    return p;
  }

  const std::string directory_;
  const int dir_fd_;
  const std::size_t segment_bytes_;

  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_ready_;
  bool stop_ = false;
  bool prep_requested_ = false;
  std::uint64_t prep_index_ = 0;
  bool prep_ready_ = false;
  Prepared prepared_;
  std::vector<SealJob> seals_;
  bool sealing_ = false;
  std::size_t flush_lag_ = 0;
  std::string seal_error_;

  std::thread worker_;
};

// --- LogWriter ----------------------------------------------------------------

LogWriter::LogWriter(WriterOptions options) : options_(std::move(options)) {
  options_.segment_bytes = std::max(options_.segment_bytes, kMinSegmentBytes);
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    fail("create_directories(" + options_.directory + "): " + ec.message());
    return;
  }
  // Hold the directory open for the lifetime of the writer: segment
  // creation/rotation/truncation must fsync the DIRECTORY too, or a crash
  // can lose the entry of a fully-msync'd segment (recovery would then
  // see a hole and hard-fail as non-final damage).
  dir_fd_ = ::open(options_.directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0) {
    fail("open(" + options_.directory + "): " + std::strerror(errno));
    return;
  }
  // A directory that already holds segment files is someone else's log:
  // appending would interleave two recordings and the eventual
  // open(O_EXCL) would die with a bare "File exists". Refuse up front.
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    const auto name = entry.path().filename().string();
    if (name.size() > std::strlen(kSegmentSuffix) &&
        name.rfind(kSegmentSuffix) ==
            name.size() - std::strlen(kSegmentSuffix)) {
      fail("refusing to overwrite existing log in " + options_.directory +
           " (found " + name + ")");
      return;
    }
  }
  if (ec) {
    fail("scan(" + options_.directory + "): " + ec.message());
    return;
  }
  if (options_.pipeline) {
    pipe_ = std::make_unique<Pipeline>(options_.directory, dir_fd_,
                                       options_.segment_bytes);
    pipe_->request_prepare(0);
  }
}

LogWriter::~LogWriter() { close(); }

bool LogWriter::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
  return false;
}

LogWriter::PipelineStats LogWriter::pipeline_stats() const noexcept {
  PipelineStats stats;
  stats.enabled = options_.pipeline;
  stats.prep_stalls = prep_stalls_;
  if (pipe_ != nullptr) stats.flush_lag_peak = pipe_->flush_lag_peak();
  return stats;
}

std::size_t LogWriter::room_events() const noexcept {
  const std::size_t used = used_ == 0 ? kSegmentHeaderBytes : used_;
  if (used + sizeof(BlockHeader) >= map_bytes_) return 0;
  return (map_bytes_ - used - sizeof(BlockHeader)) / sizeof(core::Event);
}

void LogWriter::write_segment_header() {
  SegmentHeader h;
  h.segment_index = segments_;
  h.segment_bytes = options_.segment_bytes;
  h.first_stamp = events_written_;
  h.num_vars = options_.metadata.num_vars;
  h.threads = options_.metadata.threads;
  copy_padded(h.runtime, kRuntimeChars, options_.metadata.runtime);
  copy_padded(h.policy, kPolicyChars, options_.metadata.policy);
  copy_padded(h.window_mode, kWindowModeChars, options_.metadata.window_mode);
  h.header_crc = util::crc32c(&h, offsetof(SegmentHeader, header_crc));
  // Header page before blocks: nothing else lands in the mapping until
  // this memcpy is done.
  std::memset(map_, 0, kSegmentHeaderBytes);
  // Copy only the used bytes: sizeof(SegmentHeader) includes trailing
  // struct padding, whose (indeterminate) stack bytes must not leak into
  // the file — "rest of the page is zero" is part of the format.
  std::memcpy(map_, &h, kSegmentHeaderUsedBytes);
  used_ = kSegmentHeaderBytes;
  ++segments_;
  bytes_written_ += kSegmentHeaderBytes;
}

bool LogWriter::open_segment() {
  if (pipe_ != nullptr) {
    // Pipelined: the segment was created, sized, mapped, pre-faulted and
    // dir-fsync'd by the prep thread; making it current is a pointer
    // swap plus the 4 KiB header write (first_stamp is only known now).
    bool stalled = false;
    Pipeline::Prepared p = pipe_->take_prepared(&stalled);
    if (stalled) ++prep_stalls_;
    if (!p.error.empty()) return fail(p.error);
    if (p.index != segments_) {
      ::munmap(p.map, options_.segment_bytes);
      ::close(p.fd);
      return fail("pipeline prepared segment " + std::to_string(p.index) +
                  ", expected " + std::to_string(segments_));
    }
    fd_ = p.fd;
    map_ = p.map;
    map_bytes_ = options_.segment_bytes;
    write_segment_header();
    ++dir_fsyncs_;  // performed by the prep thread before the handover
    pipe_->request_prepare(segments_);
    return true;
  }

  const auto path = std::filesystem::path(options_.directory) /
                    segment_file_name(segments_);
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_EXCL, 0644);
  if (fd_ < 0) {
    return fail("open(" + path.string() + "): " + std::strerror(errno));
  }
  std::string size_err;
  if (!size_segment(fd_, options_.segment_bytes, /*preallocate=*/false,
                    &size_err)) {
    ::close(fd_);
    fd_ = -1;
    return fail(path.string() + ": " + size_err);
  }
  void* map = ::mmap(nullptr, options_.segment_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    const int e = errno;
    ::close(fd_);
    fd_ = -1;
    return fail("mmap(" + path.string() + "): " + std::strerror(e));
  }
  map_ = static_cast<unsigned char*>(map);
  map_bytes_ = options_.segment_bytes;
  write_segment_header();
  // The new segment's directory entry (name + inode) must be durable
  // before any block lands in it: otherwise a crash after rotation can
  // drop a whole mid-log segment even though its pages were msync'd.
  return sync_directory();
}

bool LogWriter::sync_directory() {
  if (dir_fd_ < 0) return fail("directory fd not open");
  if (::fsync(dir_fd_) != 0) {
    return fail(std::string("fsync(directory): ") + std::strerror(errno));
  }
  ++dir_fsyncs_;
  return true;
}

void LogWriter::put_block(std::span<const core::Event> events) {
  const std::size_t payload = events.size_bytes();
  unsigned char* at = map_ + used_;
  // Payload first, header last: until the header bytes land, the reader
  // sees either zeroes (end of segment) or a CRC-failing torn tail.
  unsigned char* body = at + sizeof(BlockHeader);
  std::memcpy(body, events.data(), payload);
  BlockHeader bh;
  bh.event_count = static_cast<std::uint32_t>(events.size());
  bh.first_stamp = events_written_;
  bh.payload_crc = util::crc32c(body, payload);
  bh.header_crc = util::crc32c(&bh, kBlockHeaderCrcBytes);
  std::memcpy(at, &bh, sizeof bh);
  used_ += sizeof(BlockHeader) + payload;
  bytes_written_ += sizeof(BlockHeader) + payload;
  events_written_ += events.size();
  ++blocks_written_;
}

bool LogWriter::append(std::span<const core::Event> events) {
  if (!ok()) return false;
  if (closed_) return fail("append after close");
  while (!events.empty()) {
    if (map_ == nullptr && !open_segment()) return false;
    std::size_t room = room_events();
    if (room == 0) {
      if (!close_segment(/*truncate_to_used=*/false)) return false;
      if (!open_segment()) return false;
      room = room_events();
    }
    const std::size_t take = std::min(events.size(), room);
    // event_count is u32; a drained batch can't realistically exceed it,
    // but split defensively rather than truncate.
    const std::size_t n = std::min(take, std::size_t{0x7fffffff});
    put_block(events.first(n));
    events = events.subspan(n);
  }
  return true;
}

bool LogWriter::close_segment(bool truncate_to_used) {
  if (map_ == nullptr) return true;
  if (pipe_ != nullptr && !truncate_to_used) {
    // Rotation in pipelined mode: hand the full segment's msync+munmap
    // to the prep thread. A deferred msync failure latches through
    // ok()/error() at close() — before which nothing was promised
    // durable anyway.
    pipe_->seal_async(map_, map_bytes_, fd_);
    map_ = nullptr;
    map_bytes_ = 0;
    fd_ = -1;
    used_ = 0;
    return true;
  }
  bool ok_here = true;
  if (::msync(map_, map_bytes_, MS_SYNC) != 0) {
    ok_here = fail(std::string("msync: ") + std::strerror(errno));
  }
  ::munmap(map_, map_bytes_);
  map_ = nullptr;
  map_bytes_ = 0;
  if (ok_here && truncate_to_used) {
    if (::ftruncate(fd_, static_cast<off_t>(used_)) != 0) {
      ok_here = fail(std::string("ftruncate(tail): ") + std::strerror(errno));
    } else if (::fsync(fd_) != 0) {
      // msync covered the mapped pages; the tail truncation is an INODE
      // change and needs its own fsync to be durable.
      ok_here = fail(std::string("fsync(tail): ") + std::strerror(errno));
    }
  }
  ::close(fd_);
  fd_ = -1;
  used_ = 0;
  return ok_here;
}

bool LogWriter::close() {
  if (closed_) return ok();
  closed_ = true;
  // An empty log still gets one (header-only) segment so the metadata —
  // and the fact that zero events were recorded — is durable.
  if (ok() && map_ == nullptr && segments_ == 0) open_segment();
  close_segment(/*truncate_to_used=*/true);
  if (pipe_ != nullptr) {
    // Join the prep thread: every deferred msync completes (or its error
    // latches here), and the prepared-but-unused next segment is
    // unlinked so the directory holds exactly the filled segments.
    const std::string deferred = pipe_->drain_and_stop();
    if (!deferred.empty()) fail(deferred);
    pipe_.reset();
  }
  // Seal the directory state (covers the tail truncation above, the
  // unused-segment unlink and any rename-like metadata still in flight)
  // before declaring the log closed.
  if (ok()) sync_directory();
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
    dir_fd_ = -1;
  }
  return ok();
}

}  // namespace optm::log
