// Instrumented base shared objects (§6.1).
//
// BaseWord wraps std::atomic<uint64_t> and charges every instruction to the
// acting process's step counter. All STM metadata — values, versioned
// locks, ownership records, reader bitmaps, the global clock — is built
// from BaseWords, so the step counts the benchmarks report measure exactly
// the quantity Theorem 3 bounds.
//
// Memory orderings follow the usual STM discipline: acquire on loads that
// establish happens-before with a committer's release store, release on
// publication stores, acq_rel on CAS.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/thread_ctx.hpp"
#include "util/cache.hpp"

namespace optm::sim {

class BaseWord {
 public:
  BaseWord() noexcept = default;
  explicit BaseWord(std::uint64_t v) noexcept : v_(v) {}
  BaseWord(const BaseWord&) = delete;
  BaseWord& operator=(const BaseWord&) = delete;

  [[nodiscard]] std::uint64_t load(
      ThreadCtx& ctx, std::memory_order mo = std::memory_order_acquire) const noexcept {
    ctx.on_load();
    return v_.load(mo);
  }

  void store(ThreadCtx& ctx, std::uint64_t v,
             std::memory_order mo = std::memory_order_release) noexcept {
    ctx.on_store();
    v_.store(v, mo);
  }

  [[nodiscard]] bool cas(ThreadCtx& ctx, std::uint64_t& expected,
                         std::uint64_t desired) noexcept {
    ctx.on_rmw();
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

  std::uint64_t fetch_add(ThreadCtx& ctx, std::uint64_t d) noexcept {
    ctx.on_rmw();
    return v_.fetch_add(d, std::memory_order_acq_rel);
  }

  std::uint64_t fetch_or(ThreadCtx& ctx, std::uint64_t bits) noexcept {
    ctx.on_rmw();
    return v_.fetch_or(bits, std::memory_order_acq_rel);
  }

  std::uint64_t fetch_and(ThreadCtx& ctx, std::uint64_t mask) noexcept {
    ctx.on_rmw();
    return v_.fetch_and(mask, std::memory_order_acq_rel);
  }

  /// Uninstrumented peek for assertions and test oracles ONLY — never for
  /// algorithm steps (it would falsify the step accounting).
  [[nodiscard]] std::uint64_t peek() const noexcept {
    return v_.load(std::memory_order_acquire);
  }

  /// Uninstrumented initialization, for construction-time setup before any
  /// process runs.
  void init(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// The global version clock shared by TL2-style and multi-version runtimes.
class GlobalClock {
 public:
  [[nodiscard]] std::uint64_t read(ThreadCtx& ctx) noexcept { return w_->load(ctx); }
  /// Atomically advance and return the NEW value.
  std::uint64_t advance(ThreadCtx& ctx) noexcept { return w_->fetch_add(ctx, 1) + 1; }

 private:
  util::Padded<BaseWord> w_;
};

}  // namespace optm::sim
