// Step accounting for the §6.1 cost model.
//
// "In a single step, a process issues a single instruction on a single base
//  shared object" and "it does not require information about more than a
//  constant number of shared objects to be retrieved from a single base
//  shared object (i.e., in a single step)".
//
// Every access to a BaseWord (sim/base_object.hpp) increments the acting
// thread's StepCounts. Theorem 3's Ω(k) bound is therefore a *measured*
// quantity in this library: benchmarks report steps per operation, which is
// deterministic and machine-independent, alongside wall-clock time.
#pragma once

#include <cstdint>

namespace optm::sim {

struct StepCounts {
  std::uint64_t loads = 0;   // base-object reads
  std::uint64_t stores = 0;  // base-object writes
  std::uint64_t rmws = 0;    // CAS / fetch-add instructions

  [[nodiscard]] constexpr std::uint64_t total() const noexcept {
    return loads + stores + rmws;
  }
  /// Writes to shared memory (the §6 "visibility" cost: cache-line
  /// invalidations a reader inflicts on other processors).
  [[nodiscard]] constexpr std::uint64_t shared_writes() const noexcept {
    return stores + rmws;
  }

  constexpr StepCounts& operator-=(const StepCounts& o) noexcept {
    loads -= o.loads;
    stores -= o.stores;
    rmws -= o.rmws;
    return *this;
  }
  friend constexpr StepCounts operator-(StepCounts a, const StepCounts& b) noexcept {
    a -= b;
    return a;
  }
  constexpr StepCounts& operator+=(const StepCounts& o) noexcept {
    loads += o.loads;
    stores += o.stores;
    rmws += o.rmws;
    return *this;
  }
};

}  // namespace optm::sim
