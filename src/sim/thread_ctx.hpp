// The process model of §6.1: each transaction is executed by a single
// process; each process executes transactions sequentially.
//
// A ThreadCtx identifies one such process. STM implementations key ALL
// per-transaction state on ctx.id() — never on thread-local storage — so
// tests can drive several logical processes deterministically from one OS
// thread (this is how the progressiveness and lower-bound tests construct
// exact interleavings).
#pragma once

#include <cstdint>

#include "sim/step_counter.hpp"

namespace optm::sim {

/// Upper bound on concurrently registered processes. Reader bitmaps (the
/// visible-read STM) store one bit per slot in a 64-bit base object.
inline constexpr std::uint32_t kMaxThreads = 64;

/// Per-transaction statistics accumulated by the runtimes.
struct TxLocalStats {
  std::uint64_t begins = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Steps spent inside read-set validation only (the Theorem 3 quantity).
  std::uint64_t validation_steps = 0;
};

class ThreadCtx {
 public:
  explicit ThreadCtx(std::uint32_t id) noexcept : id_(id) {}
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  StepCounts steps;
  TxLocalStats stats;

  void on_load() noexcept { ++steps.loads; }
  void on_store() noexcept { ++steps.stores; }
  void on_rmw() noexcept { ++steps.rmws; }

 private:
  std::uint32_t id_;
};

}  // namespace optm::sim
