#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <utility>

namespace optm::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != 'e' &&
        c != 'E' && c != '+' && c != '-' && c != 'x' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      if (looks_numeric(cells[c])) {
        os << ' ' << std::string(pad, ' ') << cells[c] << " |";
      } else {
        os << ' ' << cells[c] << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

}  // namespace optm::util
