// A small dynamic bitset tuned for the opacity checker's memoization keys
// (sets of placed transactions) and for reader registries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/hash.hpp"

namespace optm::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  [[nodiscard]] bool none() const noexcept {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  [[nodiscard]] bool all() const noexcept { return count() == bits_; }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) noexcept {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = fnv1a_init();
    for (auto w : words_) h = fnv1a_step(h, w);
    return h;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace optm::util

template <>
struct std::hash<optm::util::DynamicBitset> {
  std::size_t operator()(const optm::util::DynamicBitset& b) const noexcept {
    return static_cast<std::size_t>(b.hash());
  }
};
