// Runtime-dispatched CRC-32C kernels (declared in util/hash.hpp).
//
// The checksum frames every block of the durable event log AND both
// directions of the optm-net-v1 wire (the protocol reuses the log's
// block framing verbatim), so it is paid per drained batch on the hot
// drain thread and per received block on the certification server. The
// seed repo's byte-at-a-time table kernel costs ~2.5 cycles/byte; the
// SSE4.2/ARMv8 CRC instructions do 8 bytes per ~1-cycle-throughput op
// (~20x), and the slice-by-8 fallback ~3x. All three kernels are
// bit-identical to the consteval-table oracle in hash.hpp — enforced by
// the differential fuzz in tests/util/crc32c_test.cpp — so the on-disk
// and on-wire bytes do not change, only the cycles.
//
// Dispatch: a cached function pointer, resolved once on first use (the
// classic ifunc shape, done portably). The resolver races benignly:
// every thread that loses the race stores the same pointer value.
#include "util/hash.hpp"

#include <atomic>
#include <bit>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OPTM_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define OPTM_CRC32C_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace optm::util {

namespace {

// --- slice-by-8 software kernel ---------------------------------------------
//
// Eight derived tables let the loop fold one 64-bit word per iteration
// (8 independent table lookups, no carry chain between bytes) instead of
// the oracle's one byte per iteration. Table j holds the CRC of a byte
// followed by j zero bytes; XORing the eight lookups advances the CRC by
// the whole word.

consteval std::array<std::array<std::uint32_t, 256>, 8> slice8_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = detail::crc32c_table();
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = t[0][c & 0xffu] ^ (c >> 8);
      t[j][i] = c;
    }
  }
  return t;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kSlice8 =
    slice8_tables();

[[nodiscard]] std::uint32_t crc32c_slice8(const void* data, std::size_t n,
                                          std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  // The word loop assumes little-endian byte order in the loaded u64;
  // big-endian hosts keep the byte kernel (the log is native-endian and
  // same-machine anyway, so no BE deployment exists to speed up).
  if constexpr (std::endian::native == std::endian::little) {
    while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
      c = kSlice8[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
      --n;
    }
    while (n >= 8) {
      std::uint64_t w;
      std::memcpy(&w, p, sizeof w);
      w ^= c;
      c = kSlice8[7][w & 0xffu] ^ kSlice8[6][(w >> 8) & 0xffu] ^
          kSlice8[5][(w >> 16) & 0xffu] ^ kSlice8[4][(w >> 24) & 0xffu] ^
          kSlice8[3][(w >> 32) & 0xffu] ^ kSlice8[2][(w >> 40) & 0xffu] ^
          kSlice8[1][(w >> 48) & 0xffu] ^ kSlice8[0][(w >> 56) & 0xffu];
      p += 8;
      n -= 8;
    }
  }
  while (n != 0) {
    c = kSlice8[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
    --n;
  }
  return ~c;
}

// --- hardware kernels --------------------------------------------------------

#if defined(OPTM_CRC32C_X86)

__attribute__((target("sse4.2"))) [[nodiscard]] std::uint32_t
crc32c_hw_impl(const void* data, std::size_t n, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    c64 = _mm_crc32_u64(c64, w);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n != 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return ~c;
}

[[nodiscard]] bool hw_probe() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}
constexpr const char* kHwName = "sse4.2";

#elif defined(OPTM_CRC32C_ARM)

__attribute__((target("+crc"))) [[nodiscard]] std::uint32_t
crc32c_hw_impl(const void* data, std::size_t n, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (n != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    c = __crc32cd(c, w);
    p += 8;
    n -= 8;
  }
  while (n != 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return ~c;
}

[[nodiscard]] bool hw_probe() noexcept {
  return (::getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}
constexpr const char* kHwName = "armv8-crc";

#else

[[nodiscard]] std::uint32_t crc32c_hw_impl(const void* data, std::size_t n,
                                           std::uint32_t seed) noexcept {
  return crc32c_slice8(data, n, seed);  // unreachable: hw_probe() is false
}
[[nodiscard]] bool hw_probe() noexcept { return false; }
constexpr const char* kHwName = "slice8";

#endif

// --- dispatch ---------------------------------------------------------------

using CrcFn = std::uint32_t (*)(const void*, std::size_t,
                                std::uint32_t) noexcept;

std::uint32_t resolve_then_run(const void* data, std::size_t n,
                               std::uint32_t seed) noexcept;

std::atomic<CrcFn> g_crc32c{&resolve_then_run};

std::uint32_t resolve_then_run(const void* data, std::size_t n,
                               std::uint32_t seed) noexcept {
  const CrcFn fn = hw_probe() ? &crc32c_hw_impl : &crc32c_slice8;
  g_crc32c.store(fn, std::memory_order_relaxed);
  return fn(data, n, seed);
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t n,
                     std::uint32_t seed) noexcept {
  return g_crc32c.load(std::memory_order_relaxed)(data, n, seed);
}

std::uint32_t crc32c_portable(const void* data, std::size_t n,
                              std::uint32_t seed) noexcept {
  return crc32c_slice8(data, n, seed);
}

bool crc32c_hw_available() noexcept { return hw_probe(); }

std::uint32_t crc32c_hw(const void* data, std::size_t n,
                        std::uint32_t seed) noexcept {
  return crc32c_hw_impl(data, n, seed);
}

const char* crc32c_backend_name() noexcept {
  return hw_probe() ? kHwName : "slice8";
}

}  // namespace optm::util
