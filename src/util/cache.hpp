// Cache-topology constants and false-sharing avoidance helpers.
#pragma once

#include <cstddef>
#include <new>

namespace optm::util {

// std::hardware_destructive_interference_size is not universally available
// (and is an ABI hazard when it is); 64 bytes is correct for every x86-64
// and most AArch64 parts, and a safe over-alignment elsewhere.
inline constexpr std::size_t kCacheLine = 64;

/// Wraps T so that distinct array elements never share a cache line.
/// Used for per-thread counters and per-variable metadata that different
/// threads write concurrently.
template <typename T>
struct alignas(kCacheLine) Padded {
  T value{};

  constexpr T& operator*() noexcept { return value; }
  constexpr const T& operator*() const noexcept { return value; }
  constexpr T* operator->() noexcept { return &value; }
  constexpr const T* operator->() const noexcept { return &value; }
};

}  // namespace optm::util
