#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace optm::util {

Cli::Cli(std::string program, std::string blurb)
    : program_(std::move(program)), blurb_(std::move(blurb)) {}

Cli& Cli::flag(std::string name, std::string default_value, std::string help) {
  order_.push_back(name);
  flags_[std::move(name)] = Flag{std::move(default_value), std::move(help)};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    const auto eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? arg.npos : eq - 2);
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (eq != std::string::npos) {
      it->second.value = arg.substr(eq + 1);
    } else {
      it->second.value = "true";  // bare --flag means boolean true
    }
  }
  return true;
}

const std::string& Cli::get(const std::string& name) const {
  return flags_.at(name).value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

bool Cli::get_bool(const std::string& name) const {
  const auto& v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << blurb_ << "\n\nflags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name << "=<value>   " << f.help << " (default: " << f.value
       << ")\n";
  }
  return os.str();
}

}  // namespace optm::util
