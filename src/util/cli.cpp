#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace optm::util {

std::optional<std::int64_t> parse_int(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  // Anything left over ("4x", "1.5", a stray sign) is garbage, and
  // std::errc::result_out_of_range covers values past int64.
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

Cli::Cli(std::string program, std::string blurb)
    : program_(std::move(program)), blurb_(std::move(blurb)) {}

Cli& Cli::flag(std::string name, std::string default_value, std::string help) {
  order_.push_back(name);
  flags_[std::move(name)] = Flag{std::move(default_value), std::move(help), false};
  return *this;
}

Cli& Cli::flag(std::string name, std::int64_t default_value, std::string help) {
  order_.push_back(name);
  flags_[std::move(name)] =
      Flag{std::to_string(default_value), std::move(help), true};
  return *this;
}

Cli& Cli::positional(std::string name, std::string help) {
  positionals_.push_back(Positional{std::move(name), "", std::move(help)});
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (next_positional < positionals_.size()) {
        positionals_[next_positional++].value = std::move(arg);
        continue;
      }
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    const auto eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? arg.npos : eq - 2);
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (eq != std::string::npos) {
      it->second.value = arg.substr(eq + 1);
    } else {
      it->second.value = "true";  // bare --flag means boolean true
    }
    if (it->second.is_int && !parse_int(it->second.value)) {
      std::fprintf(stderr, "invalid integer '%s' for flag '--%s'\n%s",
                   it->second.value.c_str(), name.c_str(), usage().c_str());
      return false;
    }
  }
  if (next_positional < positionals_.size()) {
    std::fprintf(stderr, "missing required argument <%s>\n%s",
                 positionals_[next_positional].name.c_str(), usage().c_str());
    return false;
  }
  return true;
}

const std::string& Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it != flags_.end()) return it->second.value;
  for (const auto& p : positionals_) {
    if (p.name == name) return p.value;
  }
  throw std::out_of_range("no such flag or positional: " + name);
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string& text = get(name);
  const auto value = parse_int(text);
  if (!value) {
    throw std::invalid_argument("flag '--" + name + "' value '" + text +
                                "' is not an integer (declare it with the "
                                "integer flag() overload to reject it at "
                                "parse time)");
  }
  return *value;
}

bool Cli::get_bool(const std::string& name) const {
  const auto& v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_;
  for (const auto& p : positionals_) os << " <" << p.name << ">";
  os << " — " << blurb_ << "\n";
  if (!positionals_.empty()) {
    os << "\narguments:\n";
    for (const auto& p : positionals_) {
      os << "  <" << p.name << ">   " << p.help << "\n";
    }
  }
  os << "\nflags:\n";
  for (const auto& name : order_) {
    const auto& f = flags_.at(name);
    os << "  --" << name << "=<value>   " << f.help << " (default: " << f.value
       << ")\n";
  }
  return os.str();
}

std::optional<std::string> extract_flag(int& argc, char** argv,
                                        std::string_view name) {
  const std::string prefix = "--" + std::string(name) + "=";
  std::optional<std::string> value;
  int w = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = std::string(arg.substr(prefix.size()));
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return value;
}

}  // namespace optm::util
