// ASCII table rendering used by the benchmark harness and example tools to
// print paper-style result tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace optm::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision. Right-aligns cells that look numeric.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  /// Render with box-drawing separators.
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optm::util
