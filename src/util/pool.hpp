// A small fixed-size thread pool for the parallel verification drivers.
//
// Deliberately minimal: a mutex/condvar task queue feeding N workers, plus
// a blocking parallel_for that partitions an index space across the pool.
// Verification work items are coarse (one shard = one full pass over the
// event array), so queue overhead is irrelevant; what matters is that the
// pool is created once and reused across shards, and that parallel_for
// also runs items on the calling thread — a pool of size 1 (or a
// single-core box) degrades to plain sequential execution instead of
// deadlocking or oversubscribing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace optm::util {

class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw > 0 ? hw : 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> guard(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Run fn(i) for every i in [0, n), distributed over the pool; blocks
  /// until all items completed. The calling thread participates (it steals
  /// items too), so no deadlock is possible even with a busy pool.
  /// Exceptions thrown by fn terminate (the verification drivers report
  /// failures by value, never by throwing across threads).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    struct Batch {
      std::mutex mu;
      std::condition_variable done_cv;
      std::size_t next = 0;
      std::size_t done = 0;
      std::size_t total = 0;
    };
    auto batch = std::make_shared<Batch>();
    batch->total = n;

    auto run_one = [batch, &fn]() -> bool {
      std::size_t i = 0;
      {
        const std::lock_guard<std::mutex> guard(batch->mu);
        if (batch->next >= batch->total) return false;
        i = batch->next++;
      }
      fn(i);
      {
        const std::lock_guard<std::mutex> guard(batch->mu);
        ++batch->done;
      }
      batch->done_cv.notify_all();
      return true;
    };

    // One queue entry per worker at most; each entry drains greedily.
    const std::size_t helpers = std::min(n > 1 ? n - 1 : 0, size());
    for (std::size_t w = 0; w < helpers; ++w) {
      submit([run_one] {
        while (run_one()) {
        }
      });
    }
    while (run_one()) {
    }
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done_cv.wait(lock, [&] { return batch->done == batch->total; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace optm::util
