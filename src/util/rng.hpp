// Deterministic, fast pseudo-random number generation for tests, workload
// generators and randomized property checks.
//
// We deliberately avoid std::mt19937 in hot paths: xoshiro256** is ~4x
// faster, has a tiny state (4 words, fits in registers), and splits cleanly
// into independent per-thread streams via SplitMix64 seeding — the standard
// recipe for reproducible parallel workloads.
#pragma once

#include <cstdint>
#include <limits>

namespace optm::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used as a generator on its own.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna. The jump functions are omitted; we
/// derive independent streams by seeding from distinct SplitMix64 outputs.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// approximation is fine here (bias < 2^-64 * bound, irrelevant for tests).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
#if defined(__SIZEOF_INT128__)
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(next()) * bound) >> 64);
#else
    return next() % bound;
#endif
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  constexpr bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Derive the seed for stream `stream` of a family rooted at `root`.
/// Distinct streams are statistically independent.
constexpr std::uint64_t stream_seed(std::uint64_t root, std::uint64_t stream) noexcept {
  SplitMix64 sm(root ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace optm::util
