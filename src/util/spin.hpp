// Minimal spinning primitives used by the STM runtimes.
//
// These follow the usual test-and-test-and-set discipline: spin on a plain
// load (cache-friendly, no bus traffic while the line is shared) and only
// attempt the RMW when the lock looks free. Backoff is bounded-exponential
// to avoid pathological contention collapse on oversubscribed machines.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace optm::util {

/// Bounded exponential backoff. `pause()` cost grows 2x per call up to a cap,
/// then yields to the scheduler — important on machines with fewer cores
/// than threads (including the single-core CI box this repo targets).
class Backoff {
 public:
  explicit Backoff(std::uint32_t cap = 1024) noexcept : cap_(cap) {}

  void pause() noexcept {
    if (spins_ >= cap_) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    spins_ *= 2;
  }

  void reset() noexcept { spins_ = 1; }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t cap_;
};

/// TTAS reader-writer spinlock for very short critical sections (the
/// recorder's sampling/commit windows). One atomic word: bit 0 is the
/// writer flag, the rest a reader count (in units of 2). Writer-preferring:
/// a waiting writer sets its bit first, which turns away newly arriving
/// readers, then waits for the reader count to drain — so commit windows
/// cannot be starved by a steady stream of sampling windows. Uncontended
/// cost is one RMW each way, several times cheaper than a pthread rwlock.
/// Not recursive; meets the SharedLockable operation set (minus try_*).
class SharedSpinLock {
 public:
  SharedSpinLock() noexcept = default;
  SharedSpinLock(const SharedSpinLock&) = delete;
  SharedSpinLock& operator=(const SharedSpinLock&) = delete;

  void lock_shared() noexcept {
    Backoff backoff;
    for (;;) {
      const std::uint32_t s = state_.fetch_add(2, std::memory_order_acquire);
      if ((s & kWriter) == 0) return;
      state_.fetch_sub(2, std::memory_order_relaxed);
      while ((state_.load(std::memory_order_relaxed) & kWriter) != 0) {
        backoff.pause();
      }
    }
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(2, std::memory_order_release);
  }

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      const std::uint32_t s = state_.fetch_or(kWriter, std::memory_order_acquire);
      if ((s & kWriter) == 0) {
        // Writer flag acquired; wait for in-flight readers to drain.
        while (state_.load(std::memory_order_acquire) != kWriter) {
          backoff.pause();
        }
        return;
      }
      while ((state_.load(std::memory_order_relaxed) & kWriter) != 0) {
        backoff.pause();
      }
    }
  }

  void unlock() noexcept {
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

 private:
  static constexpr std::uint32_t kWriter = 1;
  std::atomic<std::uint32_t> state_{0};
};

/// TTAS spinlock. Satisfies Cpp17BasicLockable so it composes with
/// std::lock_guard / std::scoped_lock.
class SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  [[nodiscard]] bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace optm::util
