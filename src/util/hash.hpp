// Hashing building blocks shared by the checker memo tables.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optm::util {

[[nodiscard]] constexpr std::uint64_t fnv1a_init() noexcept {
  return 0xcbf29ce484222325ULL;
}

/// Fold one 64-bit word into an FNV-1a accumulator, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                                 std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost::hash_combine-style mixing for composite keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace optm::util
