// Hashing building blocks shared by the checker memo tables, plus the
// CRC-32C used to frame the durable event log (log/format.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace optm::util {

[[nodiscard]] constexpr std::uint64_t fnv1a_init() noexcept {
  return 0xcbf29ce484222325ULL;
}

/// Fold one 64-bit word into an FNV-1a accumulator, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                                 std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost::hash_combine-style mixing for composite keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix. The open-addressing
/// tables mask the result down to a power-of-two bucket index, so every
/// input bit must influence the LOW bits — hash_combine alone leaves the
/// low bits too correlated for keys whose entropy sits in high bits (the
/// recorder's value-unique write payloads put the thread id at bit 40).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

namespace detail {

/// Reflected table for CRC-32C (Castagnoli, poly 0x1EDC6F41 reflected to
/// 0x82F63B78) — the checksum framing the on-disk event log and the
/// optm-net-v1 wire. This byte-at-a-time table is the ORACLE: the
/// dispatched implementations in crc32c.cpp (SSE4.2 / ARMv8 CRC
/// instructions, slice-by-8 software) are differentially fuzzed against
/// it, so the format's checksum can never silently change.
consteval std::array<std::uint32_t, 256> crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0x82f63b78u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = crc32c_table();

}  // namespace detail

/// Byte-at-a-time reference CRC-32C: the oracle the dispatched kernels
/// are tested against. constexpr so tests can also evaluate it at
/// compile time. Not for hot paths — use crc32c().
[[nodiscard]] constexpr std::uint32_t crc32c_reference(
    const void* data, std::size_t n, std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32cTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

/// CRC-32C of `n` bytes. `seed` chains incremental computations: pass the
/// previous call's return value to continue a running checksum.
///
/// Runtime-dispatched (crc32c.cpp): the first call probes the CPU and
/// caches a function pointer — SSE4.2 crc32q on x86-64, the ARMv8 CRC32
/// extension on aarch64, a slice-by-8 software kernel everywhere else.
/// All backends produce bit-identical results (enforced by the
/// differential fuzz in tests/util/crc32c_test.cpp), so the on-disk and
/// on-wire formats are unchanged by the dispatch.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t n,
                                   std::uint32_t seed = 0) noexcept;

/// The portable slice-by-8 kernel, callable directly for tests/benches.
[[nodiscard]] std::uint32_t crc32c_portable(const void* data, std::size_t n,
                                            std::uint32_t seed = 0) noexcept;

/// True when this CPU has a CRC-32C instruction the dispatcher will use.
[[nodiscard]] bool crc32c_hw_available() noexcept;

/// The hardware kernel. Precondition: crc32c_hw_available().
[[nodiscard]] std::uint32_t crc32c_hw(const void* data, std::size_t n,
                                      std::uint32_t seed = 0) noexcept;

/// Name of the backend crc32c() dispatches to: "sse4.2", "armv8-crc" or
/// "slice8" (for logs and bench labels).
[[nodiscard]] const char* crc32c_backend_name() noexcept;

}  // namespace optm::util
