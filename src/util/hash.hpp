// Hashing building blocks shared by the checker memo tables.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optm::util {

[[nodiscard]] constexpr std::uint64_t fnv1a_init() noexcept {
  return 0xcbf29ce484222325ULL;
}

/// Fold one 64-bit word into an FNV-1a accumulator, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                                 std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost::hash_combine-style mixing for composite keys.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// splitmix64 finalizer: a full-avalanche 64-bit mix. The open-addressing
/// tables mask the result down to a power-of-two bucket index, so every
/// input bit must influence the LOW bits — hash_combine alone leaves the
/// low bits too correlated for keys whose entropy sits in high bits (the
/// recorder's value-unique write payloads put the thread id at bit 40).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace optm::util
