// A tiny command-line parser for the example binaries. Deliberately
// minimal: `--flag=value` flags (strings/integers/bools with defaults)
// plus declared, required positional arguments (the subcommand CLIs pass
// e.g. a log directory positionally); anything undeclared is an error so
// typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optm::util {

class Cli {
 public:
  Cli(std::string program, std::string blurb);

  Cli& flag(std::string name, std::string default_value, std::string help);

  /// Declare a required positional argument; fills in declaration order.
  Cli& positional(std::string name, std::string help);

  /// Parse argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Value of a flag or a positional (parse() must have succeeded for
  /// positionals to be set).
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  struct Positional {
    std::string name;
    std::string value;
    std::string help;
  };
  std::string program_;
  std::string blurb_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::vector<Positional> positionals_;
};

/// Pluck `--name=value` out of argv in place (compacting argc) and return
/// the value — for binaries whose flag parsing belongs to another library
/// (google-benchmark's main) but that still take one flag of ours.
[[nodiscard]] std::optional<std::string> extract_flag(int& argc, char** argv,
                                                      std::string_view name);

}  // namespace optm::util
