// A tiny `--flag=value` command-line parser for the example binaries.
// Deliberately minimal: flags are strings/integers/bools with defaults;
// unknown flags are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optm::util {

class Cli {
 public:
  Cli(std::string program, std::string blurb);

  Cli& flag(std::string name, std::string default_value, std::string help);

  /// Parse argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::string program_;
  std::string blurb_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
};

}  // namespace optm::util
