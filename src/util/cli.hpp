// A tiny command-line parser for the example binaries. Deliberately
// minimal: `--flag=value` flags (strings/integers/bools with defaults)
// plus declared, required positional arguments (the subcommand CLIs pass
// e.g. a log directory positionally); anything undeclared is an error so
// typos fail loudly. Integer flags declared with the std::int64_t
// overload are validated at parse() time (std::from_chars, no trailing
// garbage, range-checked), so `--threads=abc` is a usage error, not an
// uncaught std::stoll exception deep in the tool.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optm::util {

/// Strict integer parse: the whole string must be one base-10 integer
/// (optional leading '-'), in std::int64_t range. nullopt on empty input,
/// trailing garbage ("4x"), or overflow.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view text) noexcept;

class Cli {
 public:
  Cli(std::string program, std::string blurb);

  Cli& flag(std::string name, std::string default_value, std::string help);

  /// Integer-typed flag: parse() rejects a value that is not a clean
  /// base-10 std::int64_t, printing the usage instead of letting get_int
  /// throw later.
  Cli& flag(std::string name, std::int64_t default_value, std::string help);

  /// Declare a required positional argument; fills in declaration order.
  Cli& positional(std::string name, std::string help);

  /// Parse argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Value of a flag or a positional (parse() must have succeeded for
  /// positionals to be set).
  [[nodiscard]] const std::string& get(const std::string& name) const;
  /// Strictly parsed integer value. For flags declared with the integer
  /// overload a bad value was already rejected by parse(); on a string
  /// flag whose value fails parse_int this throws std::invalid_argument
  /// (a call-site bug: declare the flag as integer-typed instead).
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool is_int = false;
  };
  struct Positional {
    std::string name;
    std::string value;
    std::string help;
  };
  std::string program_;
  std::string blurb_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  std::vector<Positional> positionals_;
};

/// Pluck `--name=value` out of argv in place (compacting argc) and return
/// the value — for binaries whose flag parsing belongs to another library
/// (google-benchmark's main) but that still take one flag of ours.
[[nodiscard]] std::optional<std::string> extract_flag(int& argc, char** argv,
                                                      std::string_view name);

}  // namespace optm::util
