#include "net/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/cli.hpp"

namespace optm::net {

namespace {

/// Blocks bigger than this are split before framing: a single block must
/// fit the credit window or the stream deadlocks waiting for credit it
/// can never have.
constexpr std::uint64_t kMaxChunkEvents = std::uint64_t{1} << 14;

}  // namespace

bool parse_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port) {
  std::string host_part;
  std::string port_part;
  if (!spec.empty() && spec.front() == '[') {
    // RFC 3986 bracketed literal: [v6-address]:port.
    const auto close = spec.find(']');
    if (close == std::string::npos || close == 1) return false;
    if (close + 1 >= spec.size() || spec[close + 1] != ':') return false;
    host_part = spec.substr(1, close - 1);
    port_part = spec.substr(close + 2);
  } else {
    // Unbracketed: exactly one colon. A bare IPv6 literal ("::1:9000")
    // has several, and any split would be a guess — reject it so the
    // caller learns to bracket instead of dialing a garbage host.
    const auto colon = spec.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    if (spec.find(':', colon + 1) != std::string::npos) return false;
    host_part = spec.substr(0, colon);
    port_part = spec.substr(colon + 1);
  }
  const auto parsed = util::parse_int(port_part);
  if (!parsed || *parsed <= 0 || *parsed > 65535) return false;
  host = host_part;
  port = static_cast<std::uint16_t>(*parsed);
  return true;
}

CertClient::~CertClient() { close(); }

void CertClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool CertClient::fail(const std::string& why) {
  if (error_.empty()) error_ = why;
  close();
  return false;
}

int CertClient::connect_with_deadline(int fd, const void* addr,
                                      unsigned int addrlen) const {
  const auto* sa = static_cast<const sockaddr*>(addr);
  if (options_.timeout_ms <= 0) {
    return ::connect(fd, sa, addrlen) == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int err = 0;
  if (::connect(fd, sa, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      err = errno;
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      const int n = ::poll(&pfd, 1, options_.timeout_ms);
      if (n == 0) {
        err = ETIMEDOUT;
      } else if (n < 0) {
        err = errno;
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
          err = errno;
        } else {
          err = so_error;
        }
      }
    }
  }
  if (err == 0 && ::fcntl(fd, F_SETFL, flags) < 0) err = errno;
  return err;
}

bool CertClient::connect(const std::string& host, std::uint16_t port,
                         const HelloFrame& hello) {
  if (fd_ >= 0) return fail("connect() on an open client");
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;  // v4 and v6 (parse_host_port accepts [::1])
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return fail("cannot resolve '" + host + "'");
  }
  // Try every resolved address (a dual-stack name like "localhost" may
  // resolve v6-first against a v4-only listener), each under the connect
  // deadline.
  int last_err = 0;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      last_err = errno;
      continue;
    }
    last_err = connect_with_deadline(
        fd_, ai->ai_addr, static_cast<unsigned int>(ai->ai_addrlen));
    if (last_err == 0) break;
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    return fail("cannot connect to " + host + ":" + port_str + ": " +
                (last_err == ETIMEDOUT ? std::string("timed out")
                                       : std::string(std::strerror(last_err))));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.timeout_ms > 0) {
    // Per-syscall deadlines for the blocking stream I/O: a recv/send that
    // sits this long fails with EAGAIN, which read/send surface as an
    // operational "timed out" error instead of hanging the pipeline.
    timeval tv{};
    tv.tv_sec = options_.timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options_.timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (!send_all(&hello, sizeof(hello))) return false;
  // The handshake ack announces the credit window (and is where an
  // immediate kError for a rejected handshake lands).
  RespFrame r;
  std::string reason;
  if (!read_resp(r, reason)) return false;
  if (!apply_resp(r, reason)) return false;
  if (r.kind != static_cast<std::uint32_t>(RespKind::kAck) || window_ == 0) {
    return fail("handshake did not ack");
  }
  return true;
}

bool CertClient::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return fail("send timed out (server unresponsive)");
      }
      return fail(std::string("send failed: ") + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool CertClient::read_resp(RespFrame& out, std::string& reason) {
  auto read_exact = [&](void* dst, std::size_t n) -> bool {
    auto* p = static_cast<unsigned char*>(dst);
    while (n > 0) {
      const ssize_t r = ::recv(fd_, p, n, 0);
      if (r == 0) return fail("server closed the connection");
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return fail("recv timed out (server unresponsive)");
        }
        return fail(std::string("recv failed: ") + std::strerror(errno));
      }
      p += r;
      n -= static_cast<std::size_t>(r);
    }
    return true;
  };
  if (!read_exact(&out, sizeof(out))) return false;
  if (out.magic != kRespMagic || !resp_crc_ok(out)) {
    return fail("corrupt response frame");
  }
  if (out.reason_len > kMaxReasonBytes) {
    return fail("oversized response reason");
  }
  reason.resize(out.reason_len);
  return out.reason_len == 0 || read_exact(reason.data(), reason.size());
}

bool CertClient::apply_resp(const RespFrame& r, const std::string& reason) {
  switch (static_cast<RespKind>(r.kind)) {
    case RespKind::kAck:
      acked_ = r.events;
      if (r.window != 0) window_ = r.window;
      return true;
    case RespKind::kFlag:
      if (!verdict_.violation) {
        verdict_.violation = core::OnlineViolation{
            r.flag_pos, reason, static_cast<core::CertFlagKind>(r.flag_kind)};
      }
      return true;
    case RespKind::kFinal:
      verdict_.certified = r.certified != 0;
      verdict_.events = r.events;
      if (r.certified == 0) {
        // kFinal's violation is authoritative (the engine's finish() ran);
        // it supersedes any provisional mid-stream flag.
        verdict_.violation = core::OnlineViolation{
            r.flag_pos, reason, static_cast<core::CertFlagKind>(r.flag_kind)};
      }
      finished_ = true;
      return true;
    case RespKind::kError:
      return fail("server error: " + (reason.empty() ? "(no reason)" : reason));
  }
  return fail("unknown response kind");
}

bool CertClient::poll_resps() {
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 0);
    if (n <= 0) return true;  // nothing buffered
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;
    if (!apply_resp(r, reason)) return false;
  }
}

bool CertClient::wait_credit(std::uint64_t incoming) {
  while (sent_ - acked_ + incoming > window_) {
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;  // blocks: the throttle point
    if (!apply_resp(r, reason)) return false;
  }
  return true;
}

bool CertClient::send_events(std::span<const core::Event> batch) {
  if (fd_ < 0) return false;
  if (!poll_resps()) return false;  // pick up flags/acks already queued
  while (!batch.empty()) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>({batch.size(), kMaxChunkEvents, window_}));
    if (!wait_credit(n)) return false;
    log::BlockHeader bh;
    bh.event_count = static_cast<std::uint32_t>(n);
    bh.first_stamp = sent_;
    // util::crc32c dispatches to the CPU's CRC instructions where
    // available, so sealing a full chunk costs microseconds, not the
    // milliseconds the old table kernel charged the send path.
    bh.payload_crc = util::crc32c(batch.data(), n * sizeof(core::Event));
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    if (!send_all(&bh, sizeof(bh))) return false;
    if (!send_all(batch.data(), n * sizeof(core::Event))) return false;
    sent_ += n;
    batch = batch.subspan(n);
  }
  return true;
}

bool CertClient::finish() {
  if (finished_) return fd_ >= 0 || error_.empty();
  if (fd_ < 0) return false;
  log::BlockHeader fin;
  fin.block_magic = 0;  // the log's end-of-segment seal doubles as FIN
  fin.event_count = 0;
  fin.first_stamp = sent_;
  fin.payload_crc = 0;
  fin.header_crc = util::crc32c(&fin, log::kBlockHeaderCrcBytes);
  if (!send_all(&fin, sizeof(fin))) return false;
  while (!finished_) {
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;
    if (!apply_resp(r, reason)) return false;
  }
  return true;
}

}  // namespace optm::net
