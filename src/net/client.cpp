#include "net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "util/cli.hpp"

namespace optm::net {

namespace {

/// Blocks bigger than this are split before framing: a single block must
/// fit the credit window or the stream deadlocks waiting for credit it
/// can never have.
constexpr std::uint64_t kMaxChunkEvents = std::uint64_t{1} << 14;

}  // namespace

bool parse_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const auto parsed = util::parse_int(spec.substr(colon + 1));
  if (!parsed || *parsed <= 0 || *parsed > 65535) return false;
  host = spec.substr(0, colon);
  port = static_cast<std::uint16_t>(*parsed);
  return true;
}

CertClient::~CertClient() { close(); }

void CertClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool CertClient::fail(const std::string& why) {
  if (error_.empty()) error_ = why;
  close();
  return false;
}

bool CertClient::connect(const std::string& host, std::uint16_t port,
                         const HelloFrame& hello) {
  if (fd_ >= 0) return fail("connect() on an open client");
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return fail("cannot resolve '" + host + "'");
  }
  fd_ = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  const bool ok =
      fd_ >= 0 && ::connect(fd_, res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) {
    return fail("cannot connect to " + host + ":" + port_str + ": " +
                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!send_all(&hello, sizeof(hello))) return false;
  // The handshake ack announces the credit window (and is where an
  // immediate kError for a rejected handshake lands).
  RespFrame r;
  std::string reason;
  if (!read_resp(r, reason)) return false;
  if (!apply_resp(r, reason)) return false;
  if (r.kind != static_cast<std::uint32_t>(RespKind::kAck) || window_ == 0) {
    return fail("handshake did not ack");
  }
  return true;
}

bool CertClient::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("send failed: ") + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool CertClient::read_resp(RespFrame& out, std::string& reason) {
  auto read_exact = [&](void* dst, std::size_t n) -> bool {
    auto* p = static_cast<unsigned char*>(dst);
    while (n > 0) {
      const ssize_t r = ::recv(fd_, p, n, 0);
      if (r == 0) return fail("server closed the connection");
      if (r < 0) {
        if (errno == EINTR) continue;
        return fail(std::string("recv failed: ") + std::strerror(errno));
      }
      p += r;
      n -= static_cast<std::size_t>(r);
    }
    return true;
  };
  if (!read_exact(&out, sizeof(out))) return false;
  if (out.magic != kRespMagic || !resp_crc_ok(out)) {
    return fail("corrupt response frame");
  }
  if (out.reason_len > kMaxReasonBytes) {
    return fail("oversized response reason");
  }
  reason.resize(out.reason_len);
  return out.reason_len == 0 || read_exact(reason.data(), reason.size());
}

bool CertClient::apply_resp(const RespFrame& r, const std::string& reason) {
  switch (static_cast<RespKind>(r.kind)) {
    case RespKind::kAck:
      acked_ = r.events;
      if (r.window != 0) window_ = r.window;
      return true;
    case RespKind::kFlag:
      if (!verdict_.violation) {
        verdict_.violation = core::OnlineViolation{
            r.flag_pos, reason, static_cast<core::CertFlagKind>(r.flag_kind)};
      }
      return true;
    case RespKind::kFinal:
      verdict_.certified = r.certified != 0;
      verdict_.events = r.events;
      if (r.certified == 0) {
        // kFinal's violation is authoritative (the engine's finish() ran);
        // it supersedes any provisional mid-stream flag.
        verdict_.violation = core::OnlineViolation{
            r.flag_pos, reason, static_cast<core::CertFlagKind>(r.flag_kind)};
      }
      finished_ = true;
      return true;
    case RespKind::kError:
      return fail("server error: " + (reason.empty() ? "(no reason)" : reason));
  }
  return fail("unknown response kind");
}

bool CertClient::poll_resps() {
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, 0);
    if (n <= 0) return true;  // nothing buffered
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;
    if (!apply_resp(r, reason)) return false;
  }
}

bool CertClient::wait_credit(std::uint64_t incoming) {
  while (sent_ - acked_ + incoming > window_) {
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;  // blocks: the throttle point
    if (!apply_resp(r, reason)) return false;
  }
  return true;
}

bool CertClient::send_events(std::span<const core::Event> batch) {
  if (fd_ < 0) return false;
  if (!poll_resps()) return false;  // pick up flags/acks already queued
  while (!batch.empty()) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>({batch.size(), kMaxChunkEvents, window_}));
    if (!wait_credit(n)) return false;
    log::BlockHeader bh;
    bh.event_count = static_cast<std::uint32_t>(n);
    bh.first_stamp = sent_;
    bh.payload_crc = util::crc32c(batch.data(), n * sizeof(core::Event));
    bh.header_crc = util::crc32c(&bh, log::kBlockHeaderCrcBytes);
    if (!send_all(&bh, sizeof(bh))) return false;
    if (!send_all(batch.data(), n * sizeof(core::Event))) return false;
    sent_ += n;
    batch = batch.subspan(n);
  }
  return true;
}

bool CertClient::finish() {
  if (finished_) return fd_ >= 0 || error_.empty();
  if (fd_ < 0) return false;
  log::BlockHeader fin;
  fin.block_magic = 0;  // the log's end-of-segment seal doubles as FIN
  fin.event_count = 0;
  fin.first_stamp = sent_;
  fin.payload_crc = 0;
  fin.header_crc = util::crc32c(&fin, log::kBlockHeaderCrcBytes);
  if (!send_all(&fin, sizeof(fin))) return false;
  while (!finished_) {
    RespFrame r;
    std::string reason;
    if (!read_resp(r, reason)) return false;
    if (!apply_resp(r, reason)) return false;
  }
  return true;
}

}  // namespace optm::net
