#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <list>
#include <vector>

#include "core/online.hpp"
#include "core/parallel_stream.hpp"
#include "core/version_order.hpp"
#include "net/protocol.hpp"

namespace optm::net {

namespace {

[[nodiscard]] bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// One tenant connection: rx/tx buffering, the protocol state machine and
/// the connection-private certification engine. Owned by the loop thread.
struct CertServer::Conn {
  enum class State : std::uint8_t {
    kHello,      // waiting for the handshake frame
    kStreaming,  // ingesting blocks
    kDraining,   // terminal frame queued; close once tx empties
  };

  int fd = -1;
  State state = State::kHello;
  bool failed = false;      // counts as streams_failed when torn down
  bool completed = false;   // FIN'd cleanly (kFinal queued)
  bool flagged = false;
  bool flag_sent = false;

  std::vector<unsigned char> rx;
  std::size_t rx_off = 0;  // consumed prefix of rx
  std::vector<unsigned char> tx;
  std::size_t tx_off = 0;

  std::vector<core::Event> scratch;  // aligned copy of one block's payload
  std::uint64_t events_ingested = 0;
  std::uint64_t last_acked = 0;

  // Exactly one of these is live after a valid handshake.
  std::unique_ptr<core::OnlineCertificateMonitor> monitor;
  std::unique_ptr<core::ParallelStreamCertifier> certifier;

  [[nodiscard]] std::size_t rx_avail() const noexcept {
    return rx.size() - rx_off;
  }
  [[nodiscard]] const unsigned char* rx_data() const noexcept {
    return rx.data() + rx_off;
  }

  [[nodiscard]] bool engine_ok() const {
    if (monitor) return monitor->ok();
    if (certifier) return certifier->ok();
    return true;
  }
  [[nodiscard]] const std::optional<core::OnlineViolation>& engine_violation()
      const {
    static const std::optional<core::OnlineViolation> none;
    if (monitor) return monitor->violation();
    if (certifier) return certifier->violation();
    return none;
  }
  void engine_ingest(std::span<const core::Event> events) {
    if (monitor) {
      (void)monitor->ingest(events);
    } else if (certifier) {
      (void)certifier->ingest(events);
    }
  }
  void engine_finish() {
    if (certifier) (void)certifier->finish();
  }
};

/// The epoll loop state (kept out of the header: raw fds + <sys/epoll.h>).
struct CertServer::Loop {
  CertServer* server = nullptr;
  int epoll_fd = -1;
  std::list<Conn> conns;
  /// Connections closed mid-batch park here until the end of the
  /// epoll_wait batch: later events[] entries may still carry the
  /// Conn* in data.ptr, and freeing the node immediately would let a
  /// connection accepted later in the SAME batch reuse the address —
  /// find() would then deliver the stale event to the wrong tenant.
  std::list<Conn> graveyard;

  ~Loop() {
    for (Conn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  [[nodiscard]] ServerOptions& options() { return server->options_; }

  void bump(std::uint64_t ServerStats::*field, std::uint64_t by = 1) {
    std::lock_guard<std::mutex> lk(server->stats_mu_);
    server->stats_.*field += by;
  }

  [[nodiscard]] bool arm(Conn& c) {
    epoll_event ev{};
    ev.events = EPOLLIN | (c.tx.size() > c.tx_off ? EPOLLOUT : 0u);
    ev.data.ptr = &c;
    return ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0;
  }

  void queue(Conn& c, const RespFrame& frame, const std::string& reason = {}) {
    RespFrame f = frame;
    const std::size_t n = std::min(reason.size(), kMaxReasonBytes);
    f.reason_len = static_cast<std::uint32_t>(n);
    f = seal_resp(f);
    const auto* p = reinterpret_cast<const unsigned char*>(&f);
    c.tx.insert(c.tx.end(), p, p + sizeof(f));
    const auto* r = reinterpret_cast<const unsigned char*>(reason.data());
    c.tx.insert(c.tx.end(), r, r + n);
  }

  /// Largest rx backlog a credit-respecting client can legitimately
  /// accumulate: the handshake, a full credit window of events (worst
  /// case framed as one-event blocks), and one maximal block of slack.
  /// A backlog beyond this means the sender is ignoring its window.
  [[nodiscard]] std::size_t rx_bound() {
    const ServerOptions& o = options();
    return sizeof(HelloFrame) +
           static_cast<std::size_t>(o.credit_events) *
               (sizeof(core::Event) + sizeof(log::BlockHeader)) +
           o.max_block_events * sizeof(core::Event) + sizeof(log::BlockHeader);
  }

  /// Best-effort tx push with no close/arm logic — used on paths that
  /// close the connection regardless of whether the bytes got out.
  void try_flush_bytes(Conn& c) {
    while (c.tx_off < c.tx.size()) {
      const ssize_t n = ::send(c.fd, c.tx.data() + c.tx_off,
                               c.tx.size() - c.tx_off, MSG_NOSIGNAL);
      if (n <= 0) return;
      c.tx_off += static_cast<std::size_t>(n);
    }
  }

  void queue_ack(Conn& c) {
    RespFrame f;
    f.kind = static_cast<std::uint32_t>(RespKind::kAck);
    f.events = c.events_ingested;
    f.window = options().credit_events;
    queue(c, f);
    c.last_acked = c.events_ingested;
  }

  /// Queue kError and start draining: the connection dies, the server
  /// does not. Idempotent — once a terminal frame is queued, later
  /// defects on the same connection are not reported again.
  void protocol_error(Conn& c, const std::string& reason) {
    if (c.state == Conn::State::kDraining) {
      c.failed = true;
      return;
    }
    RespFrame f;
    f.kind = static_cast<std::uint32_t>(RespKind::kError);
    f.events = c.events_ingested;
    queue(c, f, reason);
    c.state = Conn::State::kDraining;
    c.failed = true;
  }

  void close_conn(std::list<Conn>::iterator it) {
    Conn& c = *it;
    // A parallel certifier must be drained before destruction; ignore the
    // verdict — the stream is already accounted for.
    c.engine_finish();
    if (c.failed) {
      bump(&ServerStats::streams_failed);
    }
    if (c.fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    {
      std::lock_guard<std::mutex> lk(server->stats_mu_);
      --server->stats_.open_connections;
    }
    // Defer the free: splice keeps the node's address alive (out of
    // conns, so find() skips it) until the epoll batch ends.
    graveyard.splice(graveyard.end(), conns, it);
  }

  /// Handshake frame -> connection-private engine. False on any defect
  /// (kError already queued).
  [[nodiscard]] bool handle_hello(Conn& c, const HelloFrame& hello) {
    if (hello.magic != kHelloMagic || !hello_crc_ok(hello)) {
      protocol_error(c, "bad handshake magic/CRC");
      return false;
    }
    if (hello.version != kNetVersion) {
      protocol_error(c, "unsupported optm-net version");
      return false;
    }
    if (hello.event_size != sizeof(core::Event)) {
      protocol_error(c, "event size mismatch (cross-ABI stream)");
      return false;
    }
    if (hello.num_vars == 0 || hello.num_vars > options().max_num_vars) {
      protocol_error(c, "handshake num_vars out of bounds");
      return false;
    }
    const std::string policy_name = unpad(hello.policy, log::kPolicyChars);
    const auto policy = core::parse_version_order_policy(policy_name);
    if (!policy) {
      protocol_error(c, "unknown version-order policy '" + policy_name + "'");
      return false;
    }
    // The reserve hints are client-controlled: saturate, never trust —
    // an absurd hint must not turn into an absurd allocation.
    const std::uint64_t reserve_txs =
        std::min(hello.reserve_txs, options().max_reserve_hint);
    const std::uint64_t reserve_versions =
        std::min(hello.reserve_versions, options().max_reserve_hint);
    try {
      auto model = core::ObjectModel::registers(hello.num_vars, 0);
      const bool parallel =
          options().stream_threads > 1 &&
          *policy != core::VersionOrderPolicy::kBlindWriteSmart;
      if (parallel) {
        core::ParallelStreamCertifier::Options popts;
        popts.num_threads = options().stream_threads;
        c.certifier = std::make_unique<core::ParallelStreamCertifier>(
            std::move(model), *policy, popts);
        if (reserve_txs != 0 || reserve_versions != 0) {
          c.certifier->reserve(reserve_txs, reserve_versions);
        }
      } else {
        c.monitor = std::make_unique<core::OnlineCertificateMonitor>(
            std::move(model), *policy);
        if (reserve_txs != 0 || reserve_versions != 0) {
          c.monitor->reserve(reserve_txs, reserve_versions);
        }
      }
    } catch (const std::exception&) {
      // bad_alloc/length_error (or a pool that failed to spawn): a
      // per-connection failure, never a server crash.
      c.certifier.reset();
      c.monitor.reset();
      protocol_error(c, "engine setup failed");
      return false;
    }
    c.state = Conn::State::kStreaming;
    queue_ack(c);  // the "go" frame: announces the credit window
    return true;
  }

  /// FIN marker: run the engine's final barrier and queue the verdict.
  void handle_fin(Conn& c, const log::BlockHeader& bh) {
    if (bh.event_count != 0 || bh.first_stamp != c.events_ingested) {
      protocol_error(c, "malformed FIN marker");
      return;
    }
    c.engine_finish();
    RespFrame f;
    f.kind = static_cast<std::uint32_t>(RespKind::kFinal);
    f.events = c.events_ingested;
    const auto& violation = c.engine_violation();
    f.certified = violation ? 0 : 1;
    std::string reason;
    if (violation) {
      f.flag_pos = violation->pos;
      f.flag_kind = static_cast<std::uint32_t>(violation->kind);
      reason = violation->reason;
      c.flagged = true;
    }
    queue(c, f, reason);
    c.state = Conn::State::kDraining;
    c.completed = true;
    bump(&ServerStats::streams_completed);
    if (c.flagged) bump(&ServerStats::streams_flagged);
  }

  /// One optm-log-v1 block: validate framing, copy the payload into
  /// aligned scratch, feed the engine. False if more bytes are needed.
  [[nodiscard]] bool handle_block(Conn& c) {
    if (c.rx_avail() < sizeof(log::BlockHeader)) return false;
    log::BlockHeader bh;
    std::memcpy(&bh, c.rx_data(), sizeof(bh));
    if (bh.header_crc != util::crc32c(&bh, log::kBlockHeaderCrcBytes)) {
      protocol_error(c, "block header CRC mismatch");
      return false;
    }
    if (bh.block_magic == 0) {
      c.rx_off += sizeof(bh);
      handle_fin(c, bh);
      return false;
    }
    if (bh.block_magic != log::kBlockMagic) {
      protocol_error(c, "bad block magic");
      return false;
    }
    if (bh.event_count == 0 ||
        bh.event_count > options().max_block_events) {
      protocol_error(c, "block event_count out of bounds");
      return false;
    }
    if (bh.first_stamp != c.events_ingested) {
      protocol_error(c, "stream stamp discontinuity");
      return false;
    }
    const std::size_t payload = bh.event_count * sizeof(core::Event);
    if (c.rx_avail() < sizeof(bh) + payload) return false;
    const unsigned char* body = c.rx_data() + sizeof(bh);
    // Per-block integrity check on the ingest hot path: util::crc32c is
    // hardware-dispatched, so checksumming keeps up with the socket
    // instead of rate-limiting every tenant's stream.
    if (bh.payload_crc != util::crc32c(body, payload)) {
      protocol_error(c, "block payload CRC mismatch");
      return false;
    }
    c.scratch.resize(bh.event_count);
    std::memcpy(c.scratch.data(), body, payload);
    c.rx_off += sizeof(bh) + payload;
    c.engine_ingest(c.scratch);
    c.events_ingested += bh.event_count;
    bump(&ServerStats::events_ingested, bh.event_count);
    if (!c.flag_sent && !c.engine_ok()) {
      // Early warning; the stream keeps flowing (the recording stays
      // complete), kFinal repeats the verdict authoritatively.
      c.flag_sent = true;
      const auto& violation = c.engine_violation();
      RespFrame f;
      f.kind = static_cast<std::uint32_t>(RespKind::kFlag);
      f.events = c.events_ingested;
      f.flag_pos = violation ? violation->pos : 0;
      f.flag_kind = static_cast<std::uint32_t>(
          violation ? violation->kind : core::CertFlagKind::kNone);
      queue(c, f, violation ? violation->reason : std::string());
    }
    // Credit grant: a fresh ack every ~half window of ingested events.
    if (c.events_ingested - c.last_acked >= options().credit_events / 2) {
      queue_ack(c);
    }
    return true;
  }

  void on_readable(std::list<Conn>::iterator it) {
    Conn& c = *it;
    char buf[65536];
    const std::size_t bound = rx_bound();
    for (;;) {
      if (c.rx.size() - c.rx_off > bound) {
        // The sender is ignoring the credit window (a compliant client
        // never has more than the window in flight). Mirror the
        // slow-reader rule: best-effort kError, then drop — buffering
        // for this tenant must stay bounded.
        protocol_error(c, "credit window exceeded");
        try_flush_bytes(c);
        close_conn(it);
        return;
      }
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.rx.insert(c.rx.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or a transport error: a clean close is only expected after
      // kFinal/kError was queued (draining); anything else is a
      // mid-stream disconnect.
      if (c.state != Conn::State::kDraining) c.failed = true;
      close_conn(it);
      return;
    }
    // Consume every complete frame buffered so far.
    while (c.state != Conn::State::kDraining) {
      if (c.state == Conn::State::kHello) {
        if (c.rx_avail() < sizeof(HelloFrame)) break;
        HelloFrame hello;
        std::memcpy(&hello, c.rx_data(), sizeof(hello));
        c.rx_off += sizeof(hello);
        if (!handle_hello(c, hello)) break;
      } else if (!handle_block(c)) {
        break;
      }
    }
    // Compact the consumed prefix (keeps partial-frame retention small).
    if (c.rx_off > 0) {
      c.rx.erase(c.rx.begin(),
                 c.rx.begin() + static_cast<std::ptrdiff_t>(c.rx_off));
      c.rx_off = 0;
    }
    flush(it);
  }

  /// Write as much of tx as the socket takes; drop slow readers; close
  /// draining connections whose tx has emptied. May erase the conn.
  void flush(std::list<Conn>::iterator it) {
    Conn& c = *it;
    while (c.tx_off < c.tx.size()) {
      const ssize_t n = ::send(c.fd, c.tx.data() + c.tx_off,
                               c.tx.size() - c.tx_off, MSG_NOSIGNAL);
      if (n > 0) {
        c.tx_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (c.state != Conn::State::kDraining) c.failed = true;
      close_conn(it);
      return;
    }
    if (c.tx_off == c.tx.size()) {
      c.tx.clear();
      c.tx_off = 0;
      if (c.state == Conn::State::kDraining) {
        close_conn(it);
        return;
      }
    } else if (c.tx.size() - c.tx_off > options().max_response_buffer) {
      // Slow reader: responses are piling up unread.
      c.failed = true;
      close_conn(it);
      return;
    }
    (void)arm(c);
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(server->listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN et al.: done for this wakeup
      if (conns.size() >= options().max_connections || !set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      conns.emplace_back();
      Conn& c = conns.back();
      c.fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = &c;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        conns.pop_back();
        continue;
      }
      bump(&ServerStats::connections_accepted);
      std::lock_guard<std::mutex> lk(server->stats_mu_);
      ++server->stats_.open_connections;
    }
  }

  [[nodiscard]] std::list<Conn>::iterator find(Conn* c) {
    for (auto it = conns.begin(); it != conns.end(); ++it) {
      if (&*it == c) return it;
    }
    return conns.end();
  }

  void run() {
    epoll_event events[64];
    while (!server->stop_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd, events, 64, 200);
      for (int i = 0; i < n; ++i) {
        if (events[i].data.ptr == nullptr) {
          // wake_fd: drain the counter; the loop condition does the rest.
          std::uint64_t tick = 0;
          [[maybe_unused]] const ssize_t r =
              ::read(server->wake_fd_, &tick, sizeof(tick));
          continue;
        }
        if (events[i].data.ptr == server) {
          on_accept();
          continue;
        }
        auto it = find(static_cast<Conn*>(events[i].data.ptr));
        if (it == conns.end()) continue;  // closed earlier this wakeup
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          if (it->state != Conn::State::kDraining) it->failed = true;
          close_conn(it);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          on_readable(it);  // flushes too; may close
        } else if ((events[i].events & EPOLLOUT) != 0) {
          flush(it);
        }
      }
      // Batch over: no events[] entry can reference a closed conn now.
      graveyard.clear();
    }
  }
};

CertServer::CertServer(ServerOptions options) : options_(std::move(options)) {}

CertServer::~CertServer() { stop(); }

bool CertServer::start() {
  if (started_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind address '" + options_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
    error_ = std::string("bind/listen failed: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  loop_ = std::make_unique<Loop>();
  loop_->server = this;
  loop_->epoll_fd = ::epoll_create1(0);
  if (wake_fd_ < 0 || loop_->epoll_fd < 0) {
    error_ = "epoll/eventfd setup failed";
    stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = this;  // sentinel: the listen socket
  ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.ptr = nullptr;  // sentinel: the wake eventfd
  ::epoll_ctl(loop_->epoll_fd, EPOLL_CTL_ADD, wake_fd_, &wake);

  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop_->run(); });
  started_ = true;
  return true;
}

void CertServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  loop_.reset();  // closes every connection fd
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  started_ = false;
}

ServerStats CertServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace optm::net
