// SocketSink: an EventSink that streams the recording to a remote
// certification service (net::CertServer) instead of — or, tee'd, in
// addition to — certifying locally. Drops into the same DrainPump loop as
// every other sink: `recorded_soak --connect=host:port` wires one of
// these as the soak driver's extra sink, so a live run ships the exact
// bytes it would have logged while a server-side engine certifies them.
//
// Failure semantics follow the sink contract: a transport or protocol
// failure (client.error()) is a sink failure — accept() returns false and
// the pump stops feeding this leg — while a REMOTE VIOLATION is not: the
// server keeps the stream flowing (kFlag) and the verdict is read from
// client.verdict() after finish(), exactly like MonitorSink's
// monitor.ok(). Backpressure is inherited from the client's credit
// window: accept() blocks when the server's verifier falls behind, which
// stalls the drain thread, which lets the AdaptiveDrainPacer see pending
// grow — the same throttling shape as a slow disk on the log sink.
#pragma once

#include <span>

#include "net/client.hpp"
#include "stm/sink.hpp"

namespace optm::stm {

class SocketSink final : public EventSink {
 public:
  /// The client must already be connect()ed; the sink does not own it
  /// (callers read verdict()/error() from the client after the run).
  explicit SocketSink(net::CertClient& client) noexcept : client_(&client) {}

  bool accept(std::span<const core::Event> batch) override {
    return client_->send_events(batch);
  }

  /// FIN + wait for the definitive verdict (DrainPump calls this once
  /// after the final drain, so the pump's sink_ok reflects transport
  /// health and client_->verdict() the certification outcome).
  bool finish() override { return client_->finish(); }

 private:
  net::CertClient* client_;
};

}  // namespace optm::stm
