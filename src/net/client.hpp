// CertClient: the client half of optm-net-v1 (protocol.hpp).
//
// One CertClient drives one tenant stream: connect() dials the service,
// sends the CRC-sealed handshake and blocks for the first kAck (which
// announces the credit window); send_events() frames stamp-contiguous
// batches as optm-log-v1 blocks, chunked so no block exceeds the window,
// and enforces the credit discipline — (sent - acked) stays within the
// window, blocking on acks when the server's verifier falls behind (the
// backpressure path); finish() sends the FIN marker and blocks for the
// definitive kFinal verdict.
//
// kFlag frames picked up along the way (drained opportunistically between
// sends) latch the first violation early, mirroring MonitorSink: a flag
// does not stop the stream. Transport/protocol failures latch error() and
// make every later call a cheap no-op returning false.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/event.hpp"
#include "core/online.hpp"
#include "net/protocol.hpp"

namespace optm::net {

/// The final (or early-flag) state of a remote stream.
struct RemoteVerdict {
  bool certified = false;
  std::uint64_t events = 0;  // events the server's engine ingested
  std::optional<core::OnlineViolation> violation;
};

/// "host:port" -> (host, port). IPv6 literals use RFC 3986 brackets:
/// "[::1]:9000" -> ("::1", 9000). False on malformed input: no colon,
/// empty host, non-numeric or out-of-range port, an unterminated or empty
/// bracket, or a bare multi-colon spec ("::1:9000" is ambiguous — which
/// colon splits? — and is rejected rather than silently mis-split).
[[nodiscard]] bool parse_host_port(const std::string& spec, std::string& host,
                                   std::uint16_t& port);

/// Transport deadlines. Without one, a hung (or SIGSTOPped) server blocks
/// connect()/recv()/send() forever — and with it the whole
/// DrainPump/TeeSink chain behind SocketSink.
struct ClientOptions {
  /// Applies to connect establishment and to every blocking send/recv
  /// (SO_RCVTIMEO/SO_SNDTIMEO). 0 disables the deadline entirely.
  int timeout_ms = 30'000;
};

class CertClient {
 public:
  CertClient() = default;
  explicit CertClient(const ClientOptions& options) : options_(options) {}
  ~CertClient();
  CertClient(const CertClient&) = delete;
  CertClient& operator=(const CertClient&) = delete;

  /// Dial host:port, send `hello`, block for the handshake ack (or an
  /// immediate kError, which surfaces through error()).
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                             const HelloFrame& hello);

  /// Frame + send one stamp-contiguous batch (stamps continue from the
  /// previous call), respecting the credit window. False on any
  /// transport/protocol failure (error() says why).
  [[nodiscard]] bool send_events(std::span<const core::Event> batch);

  /// FIN + block for kFinal. False on transport failure; the verdict —
  /// including a flagged one — is in verdict(). Idempotent.
  [[nodiscard]] bool finish();

  void close();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Populated by finish(); before that, a kFlag picked up mid-stream
  /// already fills `violation`.
  [[nodiscard]] const RemoteVerdict& verdict() const noexcept {
    return verdict_;
  }
  [[nodiscard]] std::uint64_t events_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t window() const noexcept { return window_; }

 private:
  [[nodiscard]] bool fail(const std::string& why);
  /// Nonblocking connect with the configured deadline; 0 on success,
  /// errno-style code on failure (ETIMEDOUT when the deadline expired).
  /// `addr` is a const sockaddr* (void to keep <sys/socket.h> out of this
  /// header).
  [[nodiscard]] int connect_with_deadline(int fd, const void* addr,
                                          unsigned int addrlen) const;
  [[nodiscard]] bool send_all(const void* data, std::size_t n);
  /// Read exactly one response frame (blocking). False on EOF/error.
  [[nodiscard]] bool read_resp(RespFrame& out, std::string& reason);
  /// Apply one response frame to the client state. False on kError.
  [[nodiscard]] bool apply_resp(const RespFrame& r, const std::string& reason);
  /// Drain any responses already buffered by the kernel without blocking.
  [[nodiscard]] bool poll_resps();
  /// Block until (sent_ - acked_ + incoming) fits the window.
  [[nodiscard]] bool wait_credit(std::uint64_t incoming);

  ClientOptions options_;
  int fd_ = -1;
  bool finished_ = false;
  std::string error_;
  RemoteVerdict verdict_;
  std::uint64_t sent_ = 0;    // events framed + written
  std::uint64_t acked_ = 0;   // last kAck's cumulative count
  std::uint64_t window_ = 0;  // credit budget from the handshake ack
};

}  // namespace optm::net
