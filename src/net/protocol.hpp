// Wire protocol of the networked certification service ("optm-net-v1").
//
// One TCP connection carries one event stream ("tenant"): a client
// process records transactional events and ships them to the service,
// which runs a per-stream certification engine and multiplexes verdicts
// back. The stream layer reuses the optm-log-v1 block framing VERBATIM
// (log/format.hpp): after the handshake, the client sends
//
//   [HelloFrame] [BlockHeader|payload] [BlockHeader|payload] ... [FIN]
//
// where each block is a 24-byte CRC-framed log::BlockHeader followed by
// `event_count` raw 48-byte `core::Event` records — byte-identical to
// what log::LogWriter puts on disk, so `checker_tool certify-remote` can
// stream segment files to a server without re-encoding, and a client
// draining a live recorder ships the same bytes it would have logged.
// BlockHeader::first_stamp is the cumulative event count of the stream
// (the same continuity rule the segment reader enforces); the FIN marker
// is a BlockHeader with block_magic == 0 (the log's end-of-segment seal),
// event_count == 0 and first_stamp == the final event total, CRC-sealed.
//
// HANDSHAKE. HelloFrame carries the segment-header provenance fields
// (runtime / policy / window-mode / vars / threads — the optm-soak-v1
// vocabulary) plus engine pre-sizing hints, so the server can configure
// each connection's OnlineCertificateMonitor (or ParallelStreamCertifier)
// with the right model, version-order policy and reserve() before the
// first event arrives.
//
// RESPONSES. The server answers with RespFrames:
//   * kAck    — credit/backpressure: `events` = cumulative events the
//               engine has ingested, `window` = the per-stream in-flight
//               budget. The client must keep (sent - acked) <= window;
//               the server paces acks AdaptiveDrainPacer-style (a grant
//               per ~half window of ingested events), so a slow verifier
//               throttles its producer instead of buffering unboundedly.
//   * kFlag   — a certificate violation latched mid-stream (position,
//               CertFlagKind, reason text). The stream continues: like
//               MonitorSink, a violation is not a transport failure, and
//               the recording stays complete for post-mortems.
//   * kFinal  — the definitive verdict, sent after FIN once the engine's
//               finish() ran: certified flag + earliest violation.
//   * kError  — protocol failure (bad magic/CRC, event-size mismatch,
//               unknown policy, stamp discontinuity). The server closes
//               the connection after sending it; other tenants are
//               unaffected.
//
// All integers are native-endian (same-machine/same-ABI fleet protocol,
// like the log format; HelloFrame::event_size guards cross-ABI streams).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "core/event.hpp"
#include "log/format.hpp"
#include "log/writer.hpp"  // LogMetadata
#include "util/hash.hpp"

namespace optm::net {

/// "OPTMNET1" little-endian.
inline constexpr std::uint64_t kHelloMagic = 0x3154'454e'4d54'504fULL;
inline constexpr std::uint32_t kNetVersion = 1;
/// "RSP1" little-endian.
inline constexpr std::uint32_t kRespMagic = 0x3150'5352u;

struct HelloFrame {
  std::uint64_t magic = kHelloMagic;
  std::uint32_t version = kNetVersion;
  std::uint32_t event_size = sizeof(core::Event);  // cross-ABI guard
  std::uint32_t num_vars = 0;   // registers in the recorded model
  std::uint32_t threads = 0;    // producer threads (informational)
  /// Engine pre-sizing hints (0 = let the server default): expected
  /// distinct transactions and (register, value) versions, forwarded to
  /// the engine's reserve().
  std::uint64_t reserve_txs = 0;
  std::uint64_t reserve_versions = 0;
  // Segment-header provenance mirror (log/format.hpp field widths).
  char runtime[log::kRuntimeChars] = {};
  char policy[log::kPolicyChars] = {};
  char window_mode[log::kWindowModeChars] = {};
  std::uint32_t reserved = 0;
  /// CRC-32C over the bytes preceding this field.
  std::uint32_t header_crc = 0;
};
inline constexpr std::size_t kHelloCrcBytes = offsetof(HelloFrame, header_crc);
static_assert(sizeof(HelloFrame) == 128);
static_assert(std::is_trivially_copyable_v<HelloFrame>);

enum class RespKind : std::uint32_t {
  kAck = 1,
  kFlag = 2,
  kFinal = 3,
  kError = 4,
};

struct RespFrame {
  std::uint32_t magic = kRespMagic;
  std::uint32_t kind = 0;       // RespKind
  std::uint64_t events = 0;     // cumulative events ingested by the engine
  std::uint64_t window = 0;     // kAck: per-stream in-flight event budget
  std::uint64_t flag_pos = 0;   // kFlag/kFinal: earliest violation position
  std::uint32_t flag_kind = 0;  // core::CertFlagKind
  std::uint32_t certified = 0;  // kFinal: 1 = stream certified
  std::uint32_t reason_len = 0; // trailing UTF-8 reason bytes (flag/error)
  std::uint32_t header_crc = 0; // CRC-32C over the bytes preceding
  // Followed by reason_len bytes of reason text.
};
inline constexpr std::size_t kRespCrcBytes = offsetof(RespFrame, header_crc);
static_assert(sizeof(RespFrame) == 48);
static_assert(std::is_trivially_copyable_v<RespFrame>);

/// Longest reason text either side will frame (longer ones truncate).
inline constexpr std::size_t kMaxReasonBytes = 4096;

inline void copy_padded(char* dst, std::size_t cap, const std::string& src) {
  std::memset(dst, 0, cap);
  std::memcpy(dst, src.data(), std::min(src.size(), cap - 1));
}

/// Build a CRC-sealed hello from log-style metadata + reserve hints.
[[nodiscard]] inline HelloFrame make_hello(const log::LogMetadata& meta,
                                           std::uint64_t reserve_txs = 0,
                                           std::uint64_t reserve_versions = 0) {
  HelloFrame h;
  h.num_vars = meta.num_vars;
  h.threads = meta.threads;
  h.reserve_txs = reserve_txs;
  h.reserve_versions = reserve_versions;
  copy_padded(h.runtime, log::kRuntimeChars, meta.runtime);
  copy_padded(h.policy, log::kPolicyChars, meta.policy);
  copy_padded(h.window_mode, log::kWindowModeChars, meta.window_mode);
  h.header_crc = util::crc32c(&h, kHelloCrcBytes);
  return h;
}

[[nodiscard]] inline bool hello_crc_ok(const HelloFrame& h) {
  return h.header_crc == util::crc32c(&h, kHelloCrcBytes);
}

[[nodiscard]] inline RespFrame seal_resp(RespFrame r) {
  r.header_crc = util::crc32c(&r, kRespCrcBytes);
  return r;
}

[[nodiscard]] inline bool resp_crc_ok(const RespFrame& r) {
  return r.header_crc == util::crc32c(&r, kRespCrcBytes);
}

/// NUL-padded fixed field -> std::string.
[[nodiscard]] inline std::string unpad(const char* s, std::size_t cap) {
  const std::size_t n = ::strnlen(s, cap);
  return std::string(s, n);
}

}  // namespace optm::net
