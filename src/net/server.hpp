// CertServer: the networked multi-tenant certification service.
//
// An epoll-based TCP server; every accepted connection is one tenant
// stream speaking optm-net-v1 (protocol.hpp): a CRC-sealed HelloFrame
// carrying the segment-header provenance fields, then optm-log-v1 blocks
// of raw events, then a FIN marker. Per connection the server stands up
// its own certification engine — an OnlineCertificateMonitor, or a
// ParallelStreamCertifier when Options::stream_threads > 1 and the
// stream's policy can shard — configured and reserve()d from the
// handshake, and multiplexes kAck (credit/backpressure), kFlag (violation
// latched, stream continues), kFinal (definitive verdict) and kError
// frames back.
//
// FAILURE ISOLATION. Everything that can go wrong on one connection —
// malformed frames, CRC failures, event-size or stamp-continuity
// mismatches, an unknown policy, out-of-bounds handshake sizing fields,
// an engine allocation failure, a mid-stream disconnect, a slow reader
// whose response buffer overflows, a sender that ignores its credit
// window — is a per-connection error: the server sends kError where it
// still can, closes that connection, counts it in
// stats().streams_failed, and keeps serving every other tenant. Nothing
// a client sends can take the service down or poison another stream's
// verdict (each engine is connection-private).
//
// BACKPRESSURE. Each stream gets a fixed in-flight budget
// (Options::credit_events, announced in the handshake ack); the server
// grants fresh credit roughly every half window of ingested events, the
// AdaptiveDrainPacer shape applied across the wire: bursts batch up, a
// verifier that falls behind throttles its producer, and per-tenant
// buffering stays bounded. The window is enforced on BOTH sides: a
// compliant client throttles itself on acks, and the server bounds each
// connection's receive backlog to what a credit-respecting sender could
// legitimately have in flight — a sender that ignores credit is dropped
// with kError instead of growing the rx buffer without bound.
//
// THREADING. One loop thread owns the epoll set, all connection state and
// all serial engines; ParallelStreamCertifier connections additionally
// own their private worker pools (stream_threads - 1 shards + a pass-0
// worker each). start()/stop()/stats()/port() are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace optm::net {

struct ServerOptions {
  /// IPv4 address to bind; the default serves loopback tenants only.
  std::string bind_address = "127.0.0.1";
  /// 0 = let the kernel pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Live-certification threads per stream: 1 = the serial monitor, > 1 =
  /// a per-connection ParallelStreamCertifier with this worker budget
  /// (streams whose policy cannot shard fall back to the monitor).
  std::size_t stream_threads = 1;
  /// Per-stream in-flight credit, in events (announced in the first ack).
  std::uint64_t credit_events = std::uint64_t{1} << 16;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 256;
  /// Upper bound on one block's event_count; a CRC-valid header asking
  /// for more is a protocol error (bounds per-connection scratch memory).
  std::size_t max_block_events = std::size_t{1} << 20;
  /// Upper bound on the handshake's num_vars; a CRC-valid hello asking
  /// for a larger model is a protocol error (the model is allocated on
  /// the loop thread — this bounds what one handshake can demand).
  std::uint32_t max_num_vars = std::uint32_t{1} << 20;
  /// Saturation cap for the hello's reserve_txs/reserve_versions
  /// pre-sizing hints: larger hints are clamped, never trusted — a hint
  /// is an optimization, not a client-controlled allocation. Streams
  /// that outgrow the clamped hint just fall back to dynamic growth.
  std::uint64_t max_reserve_hint = std::uint64_t{1} << 20;
  /// Slow-reader bound: a connection whose unsent response bytes exceed
  /// this is dropped.
  std::size_t max_response_buffer = std::size_t{1} << 20;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t streams_completed = 0;  // FIN'd, final verdict sent
  std::uint64_t streams_failed = 0;     // protocol/transport errors
  std::uint64_t streams_flagged = 0;    // completed with a violation
  std::uint64_t events_ingested = 0;
  std::uint64_t open_connections = 0;
};

class CertServer {
 public:
  explicit CertServer(ServerOptions options);
  ~CertServer();
  CertServer(const CertServer&) = delete;
  CertServer& operator=(const CertServer&) = delete;

  /// Bind + listen + spawn the loop thread. False (with error()) if the
  /// socket could not be set up. port() is valid once this returns true.
  [[nodiscard]] bool start();

  /// Stop accepting, close every connection, join the loop. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  struct Conn;
  struct Loop;

  ServerOptions options_;
  std::string error_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() kicks the epoll loop awake

  std::unique_ptr<Loop> loop_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace optm::net
